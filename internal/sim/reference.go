package sim

import (
	"math/bits"

	"dicer/internal/membw"
)

// This file retains the pre-optimisation solver verbatim (modulo renames).
// It is the executable specification the cached, allocation-free hot path
// in sim.go is held to: solver-equivalence tests run every scenario through
// both and require identical decision trajectories and IPC. Keep the bodies
// in lockstep with the model — any intentional model change must land in
// both paths.

// referenceSolveShares computes the cache capacity available to each
// process given the current masks, via pressure-proportional division of
// way regions. Results land in r.shares (bytes per process, indexed like
// r.procs). This is the original per-step implementation: fresh maps and
// slices every call.
func (r *Runner) referenceSolveShares() {
	n := len(r.procs)
	if n == 0 {
		return
	}
	wayBytes := r.m.WayBytes()

	// Group ways into regions keyed by sharer signature. With <=64 procs a
	// bitmask over procs identifies a region.
	type region struct {
		sharers  uint64
		capacity float64
	}
	regions := make(map[uint64]*region, 4)
	for w := 0; w < r.m.LLCWays; w++ {
		var sig uint64
		for i, s := range r.procs {
			if !s.parked && r.masks[s.clos]&(1<<uint(w)) != 0 {
				sig |= 1 << uint(i)
			}
		}
		if sig == 0 {
			continue // way no process can fill: idle capacity
		}
		reg := regions[sig]
		if reg == nil {
			reg = &region{sharers: sig}
			regions[sig] = reg
		}
		reg.capacity += wayBytes
	}

	// Initial pressure: evaluate each process at an equal split of its
	// reachable capacity.
	reach := make([]float64, n)
	sharerCount := make(map[uint64]int, len(regions))
	for sig, reg := range regions {
		cnt := bits.OnesCount64(sig)
		sharerCount[sig] = cnt
		for i := 0; i < n; i++ {
			if sig&(1<<uint(i)) != 0 {
				reach[i] += reg.capacity / float64(cnt)
			}
		}
	}
	bf := r.coLocFactor()
	caps := make([]float64, n)
	for i, s := range r.procs {
		if s.parked {
			r.pressure[i] = 0
			continue
		}
		r.pressure[i] = touchPressure(&r.m, s.proc, reach[i], bf)
		// The most capacity a process can ever make use of: its resident
		// demand when offered everything it can reach. Streaming traffic
		// churns, so OccupancyDemand returns the full offer for apps with
		// a streaming fraction; bounded apps cap at their footprint.
		caps[i] = s.proc.Perf(r.m, float64(r.m.LLCBytes), 1, bf).OccupancyB
	}

	// Damped fixed point: water-fill each region by touch rate (hits keep
	// LRU lines fresh, so retention competition follows total access
	// intensity, not miss intensity), capped by footprint; re-evaluate
	// touch rates at the resulting shares.
	active := make([]int, 0, n)
	alloc := make([]float64, n)
	for iter := 0; iter < shareIters; iter++ {
		for i := range r.shares {
			r.shares[i] = 0
		}
		for sig, reg := range regions {
			if sharerCount[sig] == 1 {
				// Exclusive region: owner takes all. (Index of the single
				// set bit.)
				i := bits.TrailingZeros64(sig)
				r.shares[i] += reg.capacity
				continue
			}
			active = active[:0]
			for i := 0; i < n; i++ {
				if sig&(1<<uint(i)) != 0 {
					active = append(active, i)
					alloc[i] = 0
				}
			}
			referenceWaterfill(reg.capacity, r.pressure, caps, active, alloc)
			for _, i := range active {
				r.shares[i] += alloc[i]
			}
		}
		for i, s := range r.procs {
			if s.parked {
				continue
			}
			p := touchPressure(&r.m, s.proc, r.shares[i], bf)
			r.pressure[i] = 0.5*r.pressure[i] + 0.5*p
		}
	}
}

// referenceWaterfill is the original waterfill: clones the active list
// per call instead of reusing scratch.
func referenceWaterfill(capacity float64, weights, caps []float64, active []int, alloc []float64) {
	remaining := capacity
	live := append([]int(nil), active...)
	for len(live) > 0 && remaining > 1e-9 {
		var totW float64
		for _, i := range live {
			totW += weights[i]
		}
		// With no weight information left (all-zero weights), fall back to
		// an even split — still honouring caps via the same loop.
		w := func(i int) float64 {
			if totW <= 0 {
				return 1
			}
			return weights[i]
		}
		tw := totW
		if tw <= 0 {
			tw = float64(len(live))
		}
		capped := live[:0]
		progressed := false
		budget := remaining
		for _, i := range live {
			t := budget * w(i) / tw
			headroom := caps[i] - alloc[i]
			if headroom <= t {
				alloc[i] += headroom
				remaining -= headroom
				progressed = true
			} else {
				capped = append(capped, i)
			}
		}
		live = capped
		if !progressed {
			// Nobody hit a cap: distribute proportionally and finish.
			for _, i := range live {
				alloc[i] += remaining * w(i) / tw
			}
			return
		}
	}
}

// stepReference advances the simulation by dt seconds using the original
// solve-everything-every-step path: share solve, per-call closures for the
// MBA throttle and bandwidth demand, and full Perf re-evaluation at every
// bisection probe.
func (r *Runner) stepReference(dt float64) {
	if len(r.procs) == 0 {
		r.time += dt
		return
	}

	r.referenceSolveShares()
	bf := r.coLocFactor()

	// Per-CLOS MBA throttle factors (1 = no throttle). A cap behaves like
	// extra latency for that CLOS's processes only: throttle t such that
	// the CLOS demand at combined inflation f*t meets the cap.
	throttle := func(clos int, f float64) float64 {
		cap := r.caps[clos]
		if cap <= 0 {
			return 1
		}
		demand := func(t float64) float64 {
			var sum float64
			for i, s := range r.procs {
				if s.clos == clos && !s.parked {
					sum += membw.BytesToGbps(s.proc.Perf(r.m, r.shares[i], f*t, bf).BytesPerSec, 1)
				}
			}
			return sum
		}
		if demand(1) <= cap {
			return 1
		}
		lo, hi := 1.0, 64.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if demand(mid) > cap {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}

	// Global bandwidth fixed point over the latency-inflation factor.
	demandAt := func(f float64) float64 {
		var total float64
		for i, s := range r.procs {
			if s.parked {
				continue
			}
			t := throttle(s.clos, f)
			total += membw.BytesToGbps(s.proc.Perf(r.m, r.shares[i], f*t, bf).BytesPerSec, 1)
		}
		return total
	}
	util, inflation := r.m.Link.Solve(demandAt)
	r.lastInflation = inflation
	r.lastUtil = util

	// Advance processes at the solved operating point.
	for i, s := range r.procs {
		if s.parked {
			// A parked core makes no progress but wall-clock time still
			// passes: charge empty cycles so cumulative IPC reflects the
			// lost throughput (this is what the EFU metric must see).
			s.proc.Cycles += dt * r.m.CyclesPerSecond()
			continue
		}
		t := throttle(s.clos, inflation)
		before := s.proc.MemBytes
		s.proc.Advance(r.m, r.shares[i], inflation*t, bf, dt)
		r.closBytes[s.clos] += s.proc.MemBytes - before
	}
	r.time += dt
}
