package sim_test

import (
	"errors"
	"testing"
	"testing/quick"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/machine"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// FuzzFullStack is the native-fuzzing variant of the property tests
// below: a seeded random workload population runs through the simulator,
// the RDT emulation, a fuzzer-chosen chaos fault schedule and the DICER
// controller, with the invariant checker validating every period. `go
// test` exercises the seed corpus (testdata/fuzz); CI runs a short
// -fuzztime exploration on top.
func FuzzFullStack(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(0), int64(1))
	f.Add(uint64(7), uint8(9), uint8(3), int64(42))
	f.Add(uint64(123456789), uint8(1), uint8(6), int64(-5))
	schedules := append([]chaos.Config{{Name: "none"}}, chaos.Schedules()...)
	m := machine.Default()
	f.Fuzz(func(t *testing.T, seed uint64, beCountRaw, chaosPick uint8, chaosSeed int64) {
		beCount := int(beCountRaw%9) + 1
		sched := schedules[int(chaosPick)%len(schedules)]
		gen := app.NewGenerator(seed)
		hp := gen.Profile("hp")
		bes := gen.Population("be", beCount)

		r, err := sim.New(m, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Attach(0, policy.HPClos, hp); err != nil {
			t.Fatal(err)
		}
		for i, be := range bes {
			if err := r.Attach(1+i, policy.BEClos, be); err != nil {
				t.Fatal(err)
			}
		}
		sys := chaos.New(resctrl.NewEmu(r, false), sched, chaosSeed)
		ctl := core.MustNew(core.DefaultConfig())
		if err := ctl.Setup(sys); err != nil && !errors.Is(err, chaos.ErrInjected) {
			t.Fatal(err)
		}
		checker := invariant.NewChecker(ctl.Config())
		meter := resctrl.NewMeter(sys)
		for period := 0; period < 20; period++ {
			r.Step(0.5)
			r.Step(0.5)
			if err := ctl.Observe(sys, meter.Sample()); err != nil &&
				!errors.Is(err, chaos.ErrInjected) {
				t.Fatalf("period %d (schedule %q): %v", period, sched.Name, err)
			}
			if err := checker.Check(sys, ctl, sys.ActuationClean()); err != nil {
				t.Fatalf("period %d (schedule %q): %v", period, sched.Name, err)
			}
		}
	})
}

// Full-stack fuzzing: random (seeded) workload populations driven through
// the simulator, the RDT emulation and the DICER controller. Whatever the
// workloads do, the invariants must hold: masks legal and disjoint,
// counters monotone, metrics bounded, no errors or panics.

func TestPropertyFullStackRandomWorkloads(t *testing.T) {
	m := machine.Default()
	f := func(seed uint64, beCountRaw uint8) bool {
		beCount := int(beCountRaw%9) + 1
		gen := app.NewGenerator(seed)
		hp := gen.Profile("hp")
		bes := gen.Population("be", beCount)

		r, err := sim.New(m, 2)
		if err != nil {
			return false
		}
		if err := r.Attach(0, policy.HPClos, hp); err != nil {
			return false
		}
		for i, be := range bes {
			if err := r.Attach(1+i, policy.BEClos, be); err != nil {
				return false
			}
		}
		emu := resctrl.NewEmu(r, false)
		ctl := core.MustNew(core.DefaultConfig())
		if err := ctl.Setup(emu); err != nil {
			return false
		}
		meter := resctrl.NewMeter(emu)

		var prevInstr float64
		for period := 0; period < 25; period++ {
			for s := 0; s < 2; s++ {
				r.Step(0.5)
			}
			p := meter.Sample()
			if err := ctl.Observe(emu, p); err != nil {
				return false
			}
			// Invariant: masks legal, disjoint, covering.
			hpMask, beMask := emu.CBM(policy.HPClos), emu.CBM(policy.BEClos)
			if hpMask == 0 || beMask == 0 || hpMask&beMask != 0 ||
				hpMask|beMask != m.FullMask() {
				return false
			}
			// Invariant: instructions monotone; IPCs plausible.
			var total float64
			for _, c := range emu.Counters().Cores {
				total += c.Instructions
				if c.IPC() < 0 || c.IPC() > 4 {
					return false
				}
			}
			if total < prevInstr {
				return false
			}
			prevInstr = total
			// Invariant: bandwidth non-negative, inflation >= 1.
			if p.TotalGbps < 0 || r.Inflation() < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: under any static disjoint partition, HP performance is
// unaffected by which random BE population runs beside it when the link
// is unsaturated (partition isolation at the model level). We enforce an
// unsaturated setup by generating compute-class BEs only.
func TestPropertyPartitionIsolationModelLevel(t *testing.T) {
	m := machine.Default()
	hpProf := app.MustByName("omnetpp1")
	f := func(seed uint64) bool {
		quietBEs := func(g *app.Generator, n int) []app.Profile {
			out := make([]app.Profile, 0, n)
			for len(out) < n {
				p := g.Profile("be")
				if p.Class == app.ClassCompute {
					out = append(out, p)
				}
			}
			return out
		}
		run := func(bes []app.Profile) float64 {
			r, err := sim.New(m, 2)
			if err != nil {
				return -1
			}
			if err := r.Attach(0, policy.HPClos, hpProf); err != nil {
				return -1
			}
			for i, be := range bes {
				if err := r.Attach(1+i, policy.BEClos, be); err != nil {
					return -1
				}
			}
			if err := r.SetMask(0, policy.HPMask(20, 10)); err != nil {
				return -1
			}
			if err := r.SetMask(1, policy.BEMask(20, 10)); err != nil {
				return -1
			}
			for i := 0; i < 10; i++ {
				r.Step(0.5)
			}
			if r.Inflation() > 1 {
				return -2 // saturated: isolation does not apply
			}
			return r.Proc(0).IPC()
		}
		a := run(quietBEs(app.NewGenerator(seed), 4))
		b := run(quietBEs(app.NewGenerator(seed+1000), 4))
		if a == -1 || b == -1 {
			return false
		}
		if a == -2 || b == -2 {
			return true // saturation: skip this sample
		}
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		return diff < 0.01*a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
