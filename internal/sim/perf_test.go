package sim

import (
	"testing"

	"dicer/internal/app"
	"dicer/internal/cache"
)

// tenCoreRunner builds the standard HP + 9 BE co-location under a
// CT-style split, the shape every experiment drives.
func tenCoreRunner(tb testing.TB) *Runner {
	tb.Helper()
	r, err := New(testMachine(), 2)
	if err != nil {
		tb.Fatal(err)
	}
	if err := r.Attach(0, 0, app.MustByName("omnetpp1")); err != nil {
		tb.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if err := r.Attach(i, 1, app.MustByName("gcc_base1")); err != nil {
			tb.Fatal(err)
		}
	}
	if err := r.SetMask(0, cache.ContiguousMask(1, 19)); err != nil {
		tb.Fatal(err)
	}
	if err := r.SetMask(1, cache.ContiguousMask(0, 1)); err != nil {
		tb.Fatal(err)
	}
	return r
}

// BenchmarkStepUncached forces a full share + bandwidth re-solve every
// step by alternating the HP mask (each SetMask bumps the change epoch),
// the worst case a policy can inflict once per period.
func BenchmarkStepUncached(b *testing.B) {
	r := tenCoreRunner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			_ = r.SetMask(0, cache.ContiguousMask(1, 19))
		} else {
			_ = r.SetMask(0, cache.ContiguousMask(2, 18))
		}
		r.Step(0.25)
	}
}

// BenchmarkStepSteadyState measures the cached path: no mask changes, so
// Steps between phase transitions skip both solves entirely.
func BenchmarkStepSteadyState(b *testing.B) {
	r := tenCoreRunner(b)
	r.Step(0.25) // prime the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(0.25)
	}
}

// TestStepZeroAllocsSteadyState is the allocation guard the ISSUE 2
// acceptance criteria pin: steady-state Step must be 0 allocs/op. The
// window is long enough to cross phase transitions, so the re-solve path
// is covered too — all its working storage is Runner-owned scratch.
func TestStepZeroAllocsSteadyState(t *testing.T) {
	r := tenCoreRunner(t)
	r.Step(0.25)
	allocs := testing.AllocsPerRun(200, func() {
		r.Step(0.25)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestStepZeroAllocsAfterMask extends the guard to the uncached path: a
// mask flip forces the full share + bandwidth re-solve, which must also
// run out of scratch buffers.
func TestStepZeroAllocsAfterMask(t *testing.T) {
	r := tenCoreRunner(t)
	r.Step(0.25)
	flip := 0
	allocs := testing.AllocsPerRun(100, func() {
		if flip%2 == 0 {
			_ = r.SetMask(0, cache.ContiguousMask(1, 19))
		} else {
			_ = r.SetMask(0, cache.ContiguousMask(2, 18))
		}
		flip++
		r.Step(0.25)
	})
	if allocs != 0 {
		t.Fatalf("uncached Step allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestStepEquivalenceReference locks the optimized solver to the retained
// reference implementation: identical masks, caps, parking events and
// steps must produce bit-identical per-proc counters and operating points.
func TestStepEquivalenceReference(t *testing.T) {
	build := func() *Runner { return tenCoreRunner(t) }
	opt := build()
	ref := build()
	ref.UseReferenceSolver(true)

	type event struct {
		step  int
		apply func(r *Runner)
	}
	events := []event{
		{3, func(r *Runner) { _ = r.SetMask(0, cache.ContiguousMask(4, 16)) }},
		{3, func(r *Runner) { _ = r.SetMask(1, cache.ContiguousMask(0, 4)) }},
		{7, func(r *Runner) { _ = r.SetBWCap(1, 20) }},
		{11, func(r *Runner) { _ = r.SetCoreParked(9, true) }},
		{15, func(r *Runner) { _ = r.SetCoreParked(9, false) }},
		{19, func(r *Runner) { _ = r.SetBWCap(1, 0) }},
		{23, func(r *Runner) { _ = r.SetMask(0, cache.ContiguousMask(1, 19)) }},
		{23, func(r *Runner) { _ = r.SetMask(1, cache.ContiguousMask(0, 1)) }},
	}
	for step := 0; step < 40; step++ {
		for _, ev := range events {
			if ev.step == step {
				ev.apply(opt)
				ev.apply(ref)
			}
		}
		opt.Step(0.25)
		ref.Step(0.25)
		if opt.Inflation() != ref.Inflation() || opt.Utilisation() != ref.Utilisation() {
			t.Fatalf("step %d: operating point diverged: inflation %v vs %v, util %v vs %v",
				step, opt.Inflation(), ref.Inflation(), opt.Utilisation(), ref.Utilisation())
		}
		for core := 0; core < 10; core++ {
			po, pr := opt.Proc(core), ref.Proc(core)
			if po.Instructions != pr.Instructions || po.Cycles != pr.Cycles || po.MemBytes != pr.MemBytes {
				t.Fatalf("step %d core %d: counters diverged: instr %v vs %v, cycles %v vs %v, bytes %v vs %v",
					step, core, po.Instructions, pr.Instructions, po.Cycles, pr.Cycles, po.MemBytes, pr.MemBytes)
			}
		}
	}
	so, sr := opt.Snapshot(), ref.Snapshot()
	for c := range so.Clos {
		if so.Clos[c].MemBytes != sr.Clos[c].MemBytes || so.Clos[c].OccupancyBytes != sr.Clos[c].OccupancyBytes {
			t.Fatalf("clos %d: snapshot diverged: %+v vs %+v", c, so.Clos[c], sr.Clos[c])
		}
	}
}

// TestRunnerReset verifies a pooled Runner behaves like a fresh one after
// Reset: same trajectory from the same inputs.
func TestRunnerReset(t *testing.T) {
	fresh := tenCoreRunner(t)
	for i := 0; i < 10; i++ {
		fresh.Step(0.25)
	}

	reused := tenCoreRunner(t)
	for i := 0; i < 5; i++ {
		reused.Step(0.25)
	}
	if err := reused.Reset(2); err != nil {
		t.Fatal(err)
	}
	if reused.Time() != 0 {
		t.Fatalf("Reset left time at %v", reused.Time())
	}
	if reused.Proc(0) != nil {
		t.Fatal("Reset left a process attached")
	}
	if reused.Mask(0) != testMachine().FullMask() || reused.Mask(1) != testMachine().FullMask() {
		t.Fatal("Reset did not restore full masks")
	}
	// Rebuild the same scenario on the reused Runner.
	if err := reused.Attach(0, 0, app.MustByName("omnetpp1")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if err := reused.Attach(i, 1, app.MustByName("gcc_base1")); err != nil {
			t.Fatal(err)
		}
	}
	_ = reused.SetMask(0, cache.ContiguousMask(1, 19))
	_ = reused.SetMask(1, cache.ContiguousMask(0, 1))
	for i := 0; i < 10; i++ {
		reused.Step(0.25)
	}
	for core := 0; core < 10; core++ {
		pf, pr := fresh.Proc(core), reused.Proc(core)
		if pf.Instructions != pr.Instructions || pf.Cycles != pr.Cycles || pf.MemBytes != pr.MemBytes {
			t.Fatalf("core %d: pooled Runner diverged from fresh after Reset", core)
		}
	}
}
