// Package sim is the discrete-time co-location simulator: a set of cores
// each running an application model (internal/app), a way-partitioned LLC
// divided among classes of service (CLOS), and a shared memory link with
// saturation (internal/membw).
//
// Each Step(dt) performs three coupled solves and then advances time:
//
//  1. Cache sharing. Ways are grouped into regions by which processes may
//     fill them (a process may fill a way if its CLOS's capacity bit-mask
//     covers it). Within a region, capacity is divided in proportion to
//     each sharer's insertion pressure (miss rate × access rate), the
//     steady state of random/LRU replacement under competing insertion
//     streams. Exclusive regions (the common case under DICER/CT) devolve
//     to "the owner gets everything". The pressure itself depends on the
//     resulting share, so the division is computed by damped fixed-point
//     iteration.
//
//  2. Bandwidth. Total memory traffic depends on per-process IPC, which
//     depends on memory latency, which depends on total traffic. The
//     equilibrium latency-inflation factor is found with membw.Link.Solve
//     (monotone bisection). Optional per-CLOS bandwidth caps (the MBA
//     extension, internal/ext) add a per-CLOS throttle factor solved the
//     same way.
//
//  3. Advance. Every process runs dt seconds at its operating point,
//     crossing phase boundaries and restarting on completion; cumulative
//     per-core and per-CLOS counters are updated.
//
// The simulator exposes exactly the observables Intel RDT exposes —
// per-core instructions/cycles, per-CLOS LLC occupancy (CMT) and memory
// bandwidth (MBM) — which internal/resctrl wraps in a resctrl-like API.
package sim

import (
	"fmt"
	"math/bits"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/machine"
	"dicer/internal/membw"
)

// shareIters bounds the pressure fixed-point iteration. Shares converge
// geometrically under damping; 12 iterations put the residual well below
// the model's own fidelity.
const shareIters = 12

// Runner simulates one server. It is not safe for concurrent use; run one
// Runner per goroutine (experiments do exactly that).
type Runner struct {
	m     machine.Machine
	masks []uint64 // per-CLOS capacity bit-mask
	procs []*slot
	caps  []float64 // per-CLOS bandwidth cap in GBps (0 = uncapped)

	time float64

	// Scratch buffers reused across Steps to keep the hot path
	// allocation-free.
	shares   []float64
	pressure []float64

	// Cumulative per-CLOS memory traffic in bytes.
	closBytes []float64

	// Last solved operating point, for inspection.
	lastInflation float64
	lastUtil      float64
}

// slot binds a process to a core and CLOS.
type slot struct {
	core   int
	clos   int
	proc   *app.Proc
	parked bool // parked cores neither run nor contend (thread packing)
}

// New creates a Runner for machine m with closCount classes of service.
// All masks start full (hardware reset state).
func New(m machine.Machine, closCount int) (*Runner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if closCount <= 0 {
		return nil, fmt.Errorf("sim: non-positive CLOS count %d", closCount)
	}
	r := &Runner{
		m:         m,
		masks:     make([]uint64, closCount),
		caps:      make([]float64, closCount),
		closBytes: make([]float64, closCount),
	}
	for i := range r.masks {
		r.masks[i] = m.FullMask()
	}
	return r, nil
}

// Machine returns the simulated platform.
func (r *Runner) Machine() machine.Machine { return r.m }

// Attach starts an instance of prof on the given core under the given
// CLOS. Each core holds at most one process.
func (r *Runner) Attach(core, clos int, prof app.Profile) error {
	if core < 0 || core >= r.m.Cores {
		return fmt.Errorf("sim: core %d out of range [0,%d)", core, r.m.Cores)
	}
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.masks))
	}
	for _, s := range r.procs {
		if s.core == core {
			return fmt.Errorf("sim: core %d already occupied", core)
		}
	}
	if err := prof.Validate(); err != nil {
		return err
	}
	r.procs = append(r.procs, &slot{core: core, clos: clos, proc: app.NewProc(prof)})
	r.shares = make([]float64, len(r.procs))
	r.pressure = make([]float64, len(r.procs))
	return nil
}

// SetMask installs a capacity bit-mask for clos (CAT semantics: non-zero,
// contiguous, within the implemented ways).
func (r *Runner) SetMask(clos int, mask uint64) error {
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.masks))
	}
	if err := cache.CheckMask(mask, r.m.LLCWays); err != nil {
		return err
	}
	r.masks[clos] = mask
	return nil
}

// Mask returns the current capacity bit-mask of clos.
func (r *Runner) Mask(clos int) uint64 { return r.masks[clos] }

// NumClos returns the number of classes of service.
func (r *Runner) NumClos() int { return len(r.masks) }

// SetBWCap sets a per-CLOS memory-bandwidth cap in Gbps (the MBA
// extension); 0 removes the cap.
func (r *Runner) SetBWCap(clos int, gbps float64) error {
	if clos < 0 || clos >= len(r.caps) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.caps))
	}
	if gbps < 0 {
		return fmt.Errorf("sim: negative bandwidth cap %g", gbps)
	}
	r.caps[clos] = gbps
	return nil
}

// SetCoreParked parks or unparks a core. A parked core's process is
// suspended: it retires no instructions, exerts no cache pressure and
// consumes no bandwidth until unparked. This models the thread-packing
// actuator that the paper's §6 BE-count extension needs.
func (r *Runner) SetCoreParked(core int, parked bool) error {
	for _, s := range r.procs {
		if s.core == core {
			s.parked = parked
			return nil
		}
	}
	return fmt.Errorf("sim: no process on core %d", core)
}

// CoreParked reports whether the core is parked.
func (r *Runner) CoreParked(core int) bool {
	for _, s := range r.procs {
		if s.core == core {
			return s.parked
		}
	}
	return false
}

// Time returns the simulated time in seconds.
func (r *Runner) Time() float64 { return r.time }

// Proc returns the process attached to core, or nil.
func (r *Runner) Proc(core int) *app.Proc {
	for _, s := range r.procs {
		if s.core == core {
			return s.proc
		}
	}
	return nil
}

// solveShares computes the cache capacity available to each process given
// the current masks, via pressure-proportional division of way regions.
// Results land in r.shares (bytes per process, indexed like r.procs).
func (r *Runner) solveShares() {
	n := len(r.procs)
	if n == 0 {
		return
	}
	wayBytes := r.m.WayBytes()

	// Group ways into regions keyed by sharer signature. With <=64 procs a
	// bitmask over procs identifies a region.
	type region struct {
		sharers  uint64
		capacity float64
	}
	regions := make(map[uint64]*region, 4)
	for w := 0; w < r.m.LLCWays; w++ {
		var sig uint64
		for i, s := range r.procs {
			if !s.parked && r.masks[s.clos]&(1<<uint(w)) != 0 {
				sig |= 1 << uint(i)
			}
		}
		if sig == 0 {
			continue // way no process can fill: idle capacity
		}
		reg := regions[sig]
		if reg == nil {
			reg = &region{sharers: sig}
			regions[sig] = reg
		}
		reg.capacity += wayBytes
	}

	// Initial pressure: evaluate each process at an equal split of its
	// reachable capacity.
	reach := make([]float64, n)
	sharerCount := make(map[uint64]int, len(regions))
	for sig, reg := range regions {
		cnt := bits.OnesCount64(sig)
		sharerCount[sig] = cnt
		for i := 0; i < n; i++ {
			if sig&(1<<uint(i)) != 0 {
				reach[i] += reg.capacity / float64(cnt)
			}
		}
	}
	bf := r.coLocFactor()
	caps := make([]float64, n)
	for i, s := range r.procs {
		if s.parked {
			r.pressure[i] = 0
			continue
		}
		r.pressure[i] = touchPressure(r.m, s.proc, reach[i], bf)
		// The most capacity a process can ever make use of: its resident
		// demand when offered everything it can reach. Streaming traffic
		// churns, so OccupancyDemand returns the full offer for apps with
		// a streaming fraction; bounded apps cap at their footprint.
		caps[i] = s.proc.Perf(r.m, float64(r.m.LLCBytes), 1, bf).OccupancyB
	}

	// Damped fixed point: water-fill each region by touch rate (hits keep
	// LRU lines fresh, so retention competition follows total access
	// intensity, not miss intensity), capped by footprint; re-evaluate
	// touch rates at the resulting shares.
	active := make([]int, 0, n)
	alloc := make([]float64, n)
	for iter := 0; iter < shareIters; iter++ {
		for i := range r.shares {
			r.shares[i] = 0
		}
		for sig, reg := range regions {
			if sharerCount[sig] == 1 {
				// Exclusive region: owner takes all. (Index of the single
				// set bit.)
				i := bits.TrailingZeros64(sig)
				r.shares[i] += reg.capacity
				continue
			}
			active = active[:0]
			for i := 0; i < n; i++ {
				if sig&(1<<uint(i)) != 0 {
					active = append(active, i)
					alloc[i] = 0
				}
			}
			waterfill(reg.capacity, r.pressure, caps, active, alloc)
			for _, i := range active {
				r.shares[i] += alloc[i]
			}
		}
		for i, s := range r.procs {
			if s.parked {
				continue
			}
			p := touchPressure(r.m, s.proc, r.shares[i], bf)
			r.pressure[i] = 0.5*r.pressure[i] + 0.5*p
		}
	}
}

// waterfill divides capacity among the active processes in proportion to
// their weights, capping each allocation at caps[i] and redistributing the
// excess to the remaining processes. Results are written into alloc at the
// active indices.
func waterfill(capacity float64, weights, caps []float64, active []int, alloc []float64) {
	remaining := capacity
	live := append([]int(nil), active...)
	for len(live) > 0 && remaining > 1e-9 {
		var totW float64
		for _, i := range live {
			totW += weights[i]
		}
		// With no weight information left (all-zero weights), fall back to
		// an even split — still honouring caps via the same loop.
		w := func(i int) float64 {
			if totW <= 0 {
				return 1
			}
			return weights[i]
		}
		tw := totW
		if tw <= 0 {
			tw = float64(len(live))
		}
		capped := live[:0]
		progressed := false
		budget := remaining
		for _, i := range live {
			t := budget * w(i) / tw
			headroom := caps[i] - alloc[i]
			if headroom <= t {
				alloc[i] += headroom
				remaining -= headroom
				progressed = true
			} else {
				capped = append(capped, i)
			}
		}
		live = capped
		if !progressed {
			// Nobody hit a cap: distribute proportionally and finish.
			for _, i := range live {
				alloc[i] += remaining * w(i) / tw
			}
			return
		}
	}
}

// touchPressure is the rate at which a process touches LLC lines at the
// given capacity: accesses per second (hits refresh LRU recency just as
// misses insert lines, so retention competition follows total access
// intensity), evaluated at unit latency inflation — the share solve is
// about cache geometry, not transient bandwidth state.
func touchPressure(m machine.Machine, pr *app.Proc, capacity, baseFactor float64) float64 {
	perf := pr.Perf(m, capacity, 1, baseFactor)
	return perf.IPC * m.CyclesPerSecond() * pr.Phase().APKI / 1000
}

// Step advances the simulation by dt seconds.
func (r *Runner) Step(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("sim: non-positive step %g", dt))
	}
	if len(r.procs) == 0 {
		r.time += dt
		return
	}

	r.solveShares()
	bf := r.coLocFactor()

	// Per-CLOS MBA throttle factors (1 = no throttle). A cap behaves like
	// extra latency for that CLOS's processes only: throttle t such that
	// the CLOS demand at combined inflation f*t meets the cap.
	throttle := func(clos int, f float64) float64 {
		cap := r.caps[clos]
		if cap <= 0 {
			return 1
		}
		demand := func(t float64) float64 {
			var sum float64
			for i, s := range r.procs {
				if s.clos == clos && !s.parked {
					sum += membw.BytesToGbps(s.proc.Perf(r.m, r.shares[i], f*t, bf).BytesPerSec, 1)
				}
			}
			return sum
		}
		if demand(1) <= cap {
			return 1
		}
		lo, hi := 1.0, 64.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if demand(mid) > cap {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}

	// Global bandwidth fixed point over the latency-inflation factor.
	demandAt := func(f float64) float64 {
		var total float64
		for i, s := range r.procs {
			if s.parked {
				continue
			}
			t := throttle(s.clos, f)
			total += membw.BytesToGbps(s.proc.Perf(r.m, r.shares[i], f*t, bf).BytesPerSec, 1)
		}
		return total
	}
	util, inflation := r.m.Link.Solve(demandAt)
	r.lastInflation = inflation
	r.lastUtil = util

	// Advance processes at the solved operating point.
	for i, s := range r.procs {
		if s.parked {
			// A parked core makes no progress but wall-clock time still
			// passes: charge empty cycles so cumulative IPC reflects the
			// lost throughput (this is what the EFU metric must see).
			s.proc.Cycles += dt * r.m.CyclesPerSecond()
			continue
		}
		t := throttle(s.clos, inflation)
		before := s.proc.MemBytes
		s.proc.Advance(r.m, r.shares[i], inflation*t, bf, dt)
		r.closBytes[s.clos] += s.proc.MemBytes - before
	}
	r.time += dt
}

// coLocFactor returns the base-CPI co-location factor for the current
// process population.
func (r *Runner) coLocFactor() float64 {
	active := 0
	for _, s := range r.procs {
		if !s.parked {
			active++
		}
	}
	return r.m.CoLocFactor(active - 1)
}

// Inflation returns the memory-latency inflation factor of the last Step.
func (r *Runner) Inflation() float64 { return r.lastInflation }

// Utilisation returns the memory-link utilisation of the last Step.
func (r *Runner) Utilisation() float64 { return r.lastUtil }

// CoreCounters are the cumulative per-core performance counters.
type CoreCounters struct {
	Core         int
	Clos         int
	Name         string  // profile name, for reporting
	Instructions float64 // retired instructions
	Cycles       float64 // elapsed core cycles
	Completions  int     // whole-profile completions (restarts)
}

// IPC returns cumulative instructions per cycle.
func (c CoreCounters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// ClosCounters are the per-CLOS RDT-style monitoring counters.
type ClosCounters struct {
	Clos           int
	MemBytes       float64 // cumulative memory traffic (MBM-style)
	OccupancyBytes float64 // instantaneous LLC occupancy (CMT-style)
	Mask           uint64  // current capacity bit-mask
}

// Snapshot is a consistent view of all counters at the current time.
type Snapshot struct {
	Time  float64
	Cores []CoreCounters
	Clos  []ClosCounters
}

// Snapshot captures all counters. Occupancy is the model's steady-state
// estimate for the current allocation: the sum over the CLOS's processes
// of the bytes they keep resident in their current share.
func (r *Runner) Snapshot() Snapshot {
	snap := Snapshot{Time: r.time}
	if len(r.procs) > 0 {
		r.solveShares()
	}
	occ := make([]float64, len(r.masks))
	bf := r.coLocFactor()
	for i, s := range r.procs {
		if !s.parked {
			perf := s.proc.Perf(r.m, r.shares[i], r.lastInflationOr1(), bf)
			o := perf.OccupancyB
			if o > r.shares[i] {
				o = r.shares[i]
			}
			occ[s.clos] += o
		}
		snap.Cores = append(snap.Cores, CoreCounters{
			Core:         s.core,
			Clos:         s.clos,
			Name:         s.proc.Profile.Name,
			Instructions: s.proc.Instructions,
			Cycles:       s.proc.Cycles,
			Completions:  s.proc.Completions,
		})
	}
	for c := range r.masks {
		snap.Clos = append(snap.Clos, ClosCounters{
			Clos:           c,
			MemBytes:       r.closBytes[c],
			OccupancyBytes: occ[c],
			Mask:           r.masks[c],
		})
	}
	return snap
}

func (r *Runner) lastInflationOr1() float64 {
	if r.lastInflation < 1 {
		return 1
	}
	return r.lastInflation
}
