// Package sim is the discrete-time co-location simulator: a set of cores
// each running an application model (internal/app), a way-partitioned LLC
// divided among classes of service (CLOS), and a shared memory link with
// saturation (internal/membw).
//
// Each Step(dt) performs three coupled solves and then advances time:
//
//  1. Cache sharing. Ways are grouped into regions by which processes may
//     fill them (a process may fill a way if its CLOS's capacity bit-mask
//     covers it). Within a region, capacity is divided in proportion to
//     each sharer's insertion pressure (miss rate × access rate), the
//     steady state of random/LRU replacement under competing insertion
//     streams. Exclusive regions (the common case under DICER/CT) devolve
//     to "the owner gets everything". The pressure itself depends on the
//     resulting share, so the division is computed by damped fixed-point
//     iteration.
//
//  2. Bandwidth. Total memory traffic depends on per-process IPC, which
//     depends on memory latency, which depends on total traffic. The
//     equilibrium latency-inflation factor is found with membw.Link.Solve
//     (monotone bisection). Optional per-CLOS bandwidth caps (the MBA
//     extension, internal/ext) add a per-CLOS throttle factor solved the
//     same way.
//
//  3. Advance. Every process runs dt seconds at its operating point,
//     crossing phase boundaries and restarting on completion; cumulative
//     per-core and per-CLOS counters are updated.
//
// Both solves are deterministic functions of inputs that change only at
// period boundaries and phase transitions — CLOS masks, bandwidth caps,
// the parked set, and each process's current phase — not every Step. The
// Runner therefore caches the solved operating point behind a
// change-detection epoch: SetMask/SetBWCap/SetCoreParked/Attach bump the
// epoch, and a per-process phase fingerprint is compared at each Step.
// When nothing changed, Step is just the Advance loop; when something did,
// the solves rerun into scratch buffers owned by the Runner, so the hot
// path performs no allocation in either case. The pre-optimisation solver
// is retained verbatim in reference.go and equivalence tests hold the two
// to identical trajectories.
//
// The simulator exposes exactly the observables Intel RDT exposes —
// per-core instructions/cycles, per-CLOS LLC occupancy (CMT) and memory
// bandwidth (MBM) — which internal/resctrl wraps in a resctrl-like API.
package sim

import (
	"fmt"
	"math/bits"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/machine"
	"dicer/internal/membw"
)

// shareIters bounds the pressure fixed-point iteration. Shares converge
// geometrically under damping; 12 iterations put the residual well below
// the model's own fidelity.
const shareIters = 12

// Runner simulates one server. It is not safe for concurrent use; run one
// Runner per goroutine (experiments do exactly that — Suite keeps a pool).
type Runner struct {
	m         machine.Machine
	masks     []uint64 // per-CLOS capacity bit-mask
	procs     []*slot
	caps      []float64 // per-CLOS bandwidth cap in GBps (0 = uncapped)
	coreIndex []int     // core -> index into procs, -1 when empty
	anyCaps   bool      // true iff any caps entry is non-zero

	time float64

	// Change detection. epoch is bumped by every mutation that can move
	// the solved operating point (masks, caps, parked set, attach/reset);
	// lastPhases records each process's phase index at the last solve.
	// The cached solve is valid only while both match.
	epoch       uint64
	solvedEpoch uint64
	sharesValid bool
	bwValid     bool
	lastPhases  []int

	// Solved operating point (valid per the flags above).
	shares    []float64 // per-proc cache capacity in bytes
	pressure  []float64
	opMiss    []float64 // per-proc miss ratio at (shares[i], current phase)
	curBF     float64   // co-location base-CPI factor at the last solve
	throttles []float64 // per-CLOS MBA throttle at the solved inflation

	// Scratch buffers reused across solves to keep the hot path
	// allocation-free.
	reach     []float64
	capsBuf   []float64
	allocBuf  []float64
	activeBuf []int
	wfLive    []int
	regionSig []uint64 // way regions keyed by sharer signature
	regionCap []float64
	regionCnt []int
	thrVal    []float64 // per-CLOS throttle memo within one demand eval
	thrSet    []bool
	occBuf    []float64 // per-CLOS occupancy accumulator for SnapshotInto

	// demandFn is the bandwidth-demand closure handed to membw.Link.Solve,
	// bound once at construction so Step allocates nothing.
	demandFn membw.Demand

	// Cumulative per-CLOS memory traffic in bytes.
	closBytes []float64

	// Last solved operating point, for inspection.
	lastInflation float64
	lastUtil      float64

	// useReference routes Step through the retained pre-optimisation
	// solver (reference.go); equivalence tests flip it.
	useReference bool
}

// slot binds a process to a core and CLOS.
type slot struct {
	core   int
	clos   int
	proc   *app.Proc
	parked bool // parked cores neither run nor contend (thread packing)
}

// New creates a Runner for machine m with closCount classes of service.
// All masks start full (hardware reset state).
func New(m machine.Machine, closCount int) (*Runner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if closCount <= 0 {
		return nil, fmt.Errorf("sim: non-positive CLOS count %d", closCount)
	}
	r := &Runner{m: m}
	r.demandFn = r.bwDemand
	r.regionSig = make([]uint64, m.LLCWays)
	r.regionCap = make([]float64, m.LLCWays)
	r.regionCnt = make([]int, m.LLCWays)
	r.coreIndex = make([]int, m.Cores)
	r.resetState(closCount)
	return r, nil
}

// Reset returns the Runner to its freshly constructed state with closCount
// classes of service, keeping its scratch buffers. A Reset Runner behaves
// exactly like one from New on the same machine; experiment drivers pool
// Runners through it to keep the sweep allocation-light.
func (r *Runner) Reset(closCount int) error {
	if closCount <= 0 {
		return fmt.Errorf("sim: non-positive CLOS count %d", closCount)
	}
	r.resetState(closCount)
	return nil
}

// resetState (re)initialises all mutable state for closCount CLOS.
func (r *Runner) resetState(closCount int) {
	r.masks = growU64(r.masks, closCount)
	r.caps = growF64(r.caps, closCount)
	r.closBytes = growF64(r.closBytes, closCount)
	r.throttles = growF64(r.throttles, closCount)
	r.thrVal = growF64(r.thrVal, closCount)
	r.thrSet = growBool(r.thrSet, closCount)
	for i := 0; i < closCount; i++ {
		r.masks[i] = r.m.FullMask()
		r.caps[i] = 0
		r.closBytes[i] = 0
	}
	for i := range r.coreIndex {
		r.coreIndex[i] = -1
	}
	r.procs = r.procs[:0]
	r.anyCaps = false
	r.time = 0
	r.lastInflation = 0
	r.lastUtil = 0
	r.invalidate()
}

// invalidate discards the cached operating point.
func (r *Runner) invalidate() {
	r.epoch++
	r.sharesValid = false
	r.bwValid = false
}

// Machine returns the simulated platform.
func (r *Runner) Machine() machine.Machine { return r.m }

// Attach starts an instance of prof on the given core under the given
// CLOS. Each core holds at most one process.
func (r *Runner) Attach(core, clos int, prof app.Profile) error {
	if core < 0 || core >= r.m.Cores {
		return fmt.Errorf("sim: core %d out of range [0,%d)", core, r.m.Cores)
	}
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.masks))
	}
	if r.coreIndex[core] >= 0 {
		return fmt.Errorf("sim: core %d already occupied", core)
	}
	if err := prof.Validate(); err != nil {
		return err
	}
	r.coreIndex[core] = len(r.procs)
	r.procs = append(r.procs, &slot{core: core, clos: clos, proc: app.NewProc(prof)})
	n := len(r.procs)
	r.shares = growF64(r.shares, n)
	r.pressure = growF64(r.pressure, n)
	r.opMiss = growF64(r.opMiss, n)
	r.reach = growF64(r.reach, n)
	r.capsBuf = growF64(r.capsBuf, n)
	r.allocBuf = growF64(r.allocBuf, n)
	r.lastPhases = growInt(r.lastPhases, n)
	r.activeBuf = growInt(r.activeBuf, n)[:0]
	r.wfLive = growInt(r.wfLive, n)[:0]
	r.invalidate()
	return nil
}

// Detach removes the process running on core, freeing the core for a
// later Attach. The process's cumulative counters are discarded with it
// (read them via Proc before detaching); per-CLOS traffic counters keep
// the bytes it moved. Detaching is the "job completed / job migrated"
// actuator of the fleet layer: a node's BE population changes at
// monitoring-period boundaries as placements and completions land.
func (r *Runner) Detach(core int) error {
	if core < 0 || core >= len(r.coreIndex) || r.coreIndex[core] < 0 {
		return fmt.Errorf("sim: no process on core %d", core)
	}
	idx := r.coreIndex[core]
	r.procs = append(r.procs[:idx], r.procs[idx+1:]...)
	for c := range r.coreIndex {
		r.coreIndex[c] = -1
	}
	for j, s := range r.procs {
		r.coreIndex[s.core] = j
	}
	r.invalidate()
	return nil
}

// SetClos moves the process on core to a different class of service —
// the emulated equivalent of writing a PID into another resctrl group's
// tasks file. Unlike Detach+Attach, the process keeps its phase position
// and cumulative counters; only its cache/bandwidth class changes. The
// multi-HP controller uses this to re-cluster HP apps between CLOS
// groups without perturbing their measured progress.
func (r *Runner) SetClos(core, clos int) error {
	if core < 0 || core >= len(r.coreIndex) || r.coreIndex[core] < 0 {
		return fmt.Errorf("sim: no process on core %d", core)
	}
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.masks))
	}
	r.procs[r.coreIndex[core]].clos = clos
	r.invalidate()
	return nil
}

// SetMask installs a capacity bit-mask for clos (CAT semantics: non-zero,
// contiguous, within the implemented ways).
func (r *Runner) SetMask(clos int, mask uint64) error {
	if clos < 0 || clos >= len(r.masks) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.masks))
	}
	if err := cache.CheckMask(mask, r.m.LLCWays); err != nil {
		return err
	}
	r.masks[clos] = mask
	r.invalidate()
	return nil
}

// Mask returns the current capacity bit-mask of clos.
func (r *Runner) Mask(clos int) uint64 { return r.masks[clos] }

// NumClos returns the number of classes of service.
func (r *Runner) NumClos() int { return len(r.masks) }

// SetBWCap sets a per-CLOS memory-bandwidth cap in Gbps (the MBA
// extension); 0 removes the cap.
func (r *Runner) SetBWCap(clos int, gbps float64) error {
	if clos < 0 || clos >= len(r.caps) {
		return fmt.Errorf("sim: clos %d out of range [0,%d)", clos, len(r.caps))
	}
	if gbps < 0 {
		return fmt.Errorf("sim: negative bandwidth cap %g", gbps)
	}
	r.caps[clos] = gbps
	r.anyCaps = false
	for _, c := range r.caps {
		if c > 0 {
			r.anyCaps = true
			break
		}
	}
	r.invalidate()
	return nil
}

// SetCoreParked parks or unparks a core. A parked core's process is
// suspended: it retires no instructions, exerts no cache pressure and
// consumes no bandwidth until unparked. This models the thread-packing
// actuator that the paper's §6 BE-count extension needs.
func (r *Runner) SetCoreParked(core int, parked bool) error {
	if core >= 0 && core < len(r.coreIndex) {
		if idx := r.coreIndex[core]; idx >= 0 {
			r.procs[idx].parked = parked
			r.invalidate()
			return nil
		}
	}
	return fmt.Errorf("sim: no process on core %d", core)
}

// CoreParked reports whether the core is parked.
func (r *Runner) CoreParked(core int) bool {
	if core >= 0 && core < len(r.coreIndex) {
		if idx := r.coreIndex[core]; idx >= 0 {
			return r.procs[idx].parked
		}
	}
	return false
}

// Time returns the simulated time in seconds.
func (r *Runner) Time() float64 { return r.time }

// Proc returns the process attached to core, or nil.
func (r *Runner) Proc(core int) *app.Proc {
	if core >= 0 && core < len(r.coreIndex) {
		if idx := r.coreIndex[core]; idx >= 0 {
			return r.procs[idx].proc
		}
	}
	return nil
}

// UseReferenceSolver routes all subsequent Steps (and share solves)
// through the retained pre-optimisation solver in reference.go instead of
// the cached allocation-free one. Solver-equivalence tests run the same
// scenario both ways and require identical trajectories; production code
// never sets this.
func (r *Runner) UseReferenceSolver(on bool) {
	r.useReference = on
	r.invalidate()
}

// solveShares brings r.shares up to date with the current masks, parked
// set and phases. Kept as the single entry point so tests and Snapshot
// share the cache (or the reference path when selected).
func (r *Runner) solveShares() {
	if r.useReference {
		r.referenceSolveShares()
		return
	}
	r.ensureShares()
}

// phasesUnchanged reports whether every process is still in the phase it
// was in at the last solve.
func (r *Runner) phasesUnchanged() bool {
	for i, s := range r.procs {
		if r.lastPhases[i] != s.proc.PhaseIndex() {
			return false
		}
	}
	return true
}

// ensureShares re-solves the cache sharing iff a mask/cap/parked mutation
// (epoch) or a phase transition invalidated the cached result.
func (r *Runner) ensureShares() {
	if len(r.procs) == 0 {
		return
	}
	if r.sharesValid && r.solvedEpoch == r.epoch && r.phasesUnchanged() {
		return
	}
	r.solveSharesFull()
	for i, s := range r.procs {
		r.lastPhases[i] = s.proc.PhaseIndex()
		if s.parked {
			r.opMiss[i] = 0
			continue
		}
		r.opMiss[i] = s.proc.Phase().Curve.MissRatio(r.shares[i])
	}
	r.sharesValid = true
	r.solvedEpoch = r.epoch
	r.bwValid = false
}

// ensureOperatingPoint extends ensureShares with the bandwidth fixed
// point: equilibrium latency inflation and per-CLOS MBA throttles.
func (r *Runner) ensureOperatingPoint() {
	r.ensureShares()
	if r.bwValid {
		return
	}
	util, inflation := r.m.Link.Solve(r.demandFn)
	r.lastUtil = util
	r.lastInflation = inflation
	for c := range r.throttles {
		r.throttles[c] = 1
	}
	if r.anyCaps {
		for c := range r.throttles {
			r.throttles[c] = r.throttleAt(c, inflation)
		}
	}
	r.bwValid = true
}

// solveSharesFull computes the cache capacity available to each process
// given the current masks, via pressure-proportional division of way
// regions. Results land in r.shares (bytes per process, indexed like
// r.procs). All working storage is scratch owned by the Runner; region
// iteration follows way order, so the result is deterministic.
func (r *Runner) solveSharesFull() {
	n := len(r.procs)
	if n == 0 {
		return
	}
	wayBytes := r.m.WayBytes()

	// Group ways into regions keyed by sharer signature. With <=64 procs a
	// bitmask over procs identifies a region.
	nr := 0
	for w := 0; w < r.m.LLCWays; w++ {
		var sig uint64
		for i, s := range r.procs {
			if !s.parked && r.masks[s.clos]&(1<<uint(w)) != 0 {
				sig |= 1 << uint(i)
			}
		}
		if sig == 0 {
			continue // way no process can fill: idle capacity
		}
		idx := -1
		for j := 0; j < nr; j++ {
			if r.regionSig[j] == sig {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = nr
			nr++
			r.regionSig[idx] = sig
			r.regionCap[idx] = 0
			r.regionCnt[idx] = bits.OnesCount64(sig)
		}
		r.regionCap[idx] += wayBytes
	}

	// Initial pressure: evaluate each process at an equal split of its
	// reachable capacity.
	for i := 0; i < n; i++ {
		r.reach[i] = 0
	}
	for j := 0; j < nr; j++ {
		sig, cnt := r.regionSig[j], r.regionCnt[j]
		for i := 0; i < n; i++ {
			if sig&(1<<uint(i)) != 0 {
				r.reach[i] += r.regionCap[j] / float64(cnt)
			}
		}
	}
	bf := r.coLocFactor()
	r.curBF = bf
	for i, s := range r.procs {
		if s.parked {
			r.pressure[i] = 0
			r.capsBuf[i] = 0
			continue
		}
		r.pressure[i] = touchPressure(&r.m, s.proc, r.reach[i], bf)
		// The most capacity a process can ever make use of: its resident
		// demand when offered everything it can reach. Streaming traffic
		// churns, so OccupancyDemand returns the full offer for apps with
		// a streaming fraction; bounded apps cap at their footprint.
		r.capsBuf[i] = s.proc.Phase().Curve.OccupancyDemand(float64(r.m.LLCBytes))
	}

	// Damped fixed point: water-fill each region by touch rate (hits keep
	// LRU lines fresh, so retention competition follows total access
	// intensity, not miss intensity), capped by footprint; re-evaluate
	// touch rates at the resulting shares.
	active := r.activeBuf[:0]
	for iter := 0; iter < shareIters; iter++ {
		for i := range r.shares {
			r.shares[i] = 0
		}
		for j := 0; j < nr; j++ {
			sig := r.regionSig[j]
			if r.regionCnt[j] == 1 {
				// Exclusive region: owner takes all. (Index of the single
				// set bit.)
				r.shares[bits.TrailingZeros64(sig)] += r.regionCap[j]
				continue
			}
			active = active[:0]
			for i := 0; i < n; i++ {
				if sig&(1<<uint(i)) != 0 {
					active = append(active, i)
					r.allocBuf[i] = 0
				}
			}
			r.wfLive = waterfill(r.regionCap[j], r.pressure, r.capsBuf, active, r.allocBuf, r.wfLive)
			for _, i := range active {
				r.shares[i] += r.allocBuf[i]
			}
		}
		for i, s := range r.procs {
			if s.parked {
				continue
			}
			p := touchPressure(&r.m, s.proc, r.shares[i], bf)
			r.pressure[i] = 0.5*r.pressure[i] + 0.5*p
		}
	}
	r.activeBuf = active[:0]
}

// waterfill divides capacity among the active processes in proportion to
// their weights, capping each allocation at caps[i] and redistributing the
// excess to the remaining processes. Results are written into alloc at the
// active indices. live is scratch storage (contents ignored); the possibly
// regrown buffer is returned for reuse. active itself is never modified.
func waterfill(capacity float64, weights, caps []float64, active []int, alloc []float64, live []int) []int {
	remaining := capacity
	live = append(live[:0], active...)
	scratch := live
	for len(live) > 0 && remaining > 1e-9 {
		var totW float64
		for _, i := range live {
			totW += weights[i]
		}
		// With no weight information left (all-zero weights), fall back to
		// an even split — still honouring caps via the same loop.
		w := func(i int) float64 {
			if totW <= 0 {
				return 1
			}
			return weights[i]
		}
		tw := totW
		if tw <= 0 {
			tw = float64(len(live))
		}
		capped := live[:0]
		progressed := false
		budget := remaining
		for _, i := range live {
			t := budget * w(i) / tw
			headroom := caps[i] - alloc[i]
			if headroom <= t {
				alloc[i] += headroom
				remaining -= headroom
				progressed = true
			} else {
				capped = append(capped, i)
			}
		}
		live = capped
		if !progressed {
			// Nobody hit a cap: distribute proportionally and finish.
			for _, i := range live {
				alloc[i] += remaining * w(i) / tw
			}
			return scratch
		}
	}
	return scratch
}

// touchPressure is the rate at which a process touches LLC lines at the
// given capacity: accesses per second (hits refresh LRU recency just as
// misses insert lines, so retention competition follows total access
// intensity), evaluated at unit latency inflation — the share solve is
// about cache geometry, not transient bandwidth state.
func touchPressure(m *machine.Machine, pr *app.Proc, capacity, baseFactor float64) float64 {
	ph := pr.PhaseRef()
	perf := app.PhasePerfMissRef(m, ph, ph.Curve.MissRatio(capacity), 1, baseFactor)
	return perf.IPC * m.CyclesPerSecond() * ph.APKI / 1000
}

// procGbps is one process's bandwidth demand in Gbps at the given
// inflation factor, using the memoised miss ratio for its current share
// and phase. Arithmetic matches the original per-step Perf evaluation
// term for term.
func (r *Runner) procGbps(i int, inflation float64) float64 {
	s := r.procs[i]
	perf := app.PhasePerfMissRef(&r.m, s.proc.PhaseRef(), r.opMiss[i], inflation, r.curBF)
	return membw.BytesToGbps(perf.BytesPerSec, 1)
}

// closDemand is the bandwidth demand of one CLOS's processes at combined
// inflation f*t (the MBA throttle bisection's objective).
func (r *Runner) closDemand(clos int, f, t float64) float64 {
	var sum float64
	for i, s := range r.procs {
		if s.clos == clos && !s.parked {
			sum += r.procGbps(i, f*t)
		}
	}
	return sum
}

// throttleAt solves the per-CLOS MBA throttle factor at inflation f
// (1 = no throttle). A cap behaves like extra latency for that CLOS's
// processes only: throttle t such that the CLOS demand at combined
// inflation f*t meets the cap.
func (r *Runner) throttleAt(clos int, f float64) float64 {
	cap := r.caps[clos]
	if cap <= 0 {
		return 1
	}
	if r.closDemand(clos, f, 1) <= cap {
		return 1
	}
	lo, hi := 1.0, 64.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if r.closDemand(clos, f, mid) > cap {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// bwDemand is the total offered load in Gbps at latency-inflation factor
// f — the demand curve handed to membw.Link.Solve. With no MBA caps set
// (the common case) the throttle path short-circuits entirely; otherwise
// each CLOS's throttle is solved once per evaluation and shared by its
// processes.
func (r *Runner) bwDemand(f float64) float64 {
	var total float64
	if !r.anyCaps {
		for i, s := range r.procs {
			if s.parked {
				continue
			}
			total += r.procGbps(i, f)
		}
		return total
	}
	for c := range r.thrSet {
		r.thrSet[c] = false
	}
	for i, s := range r.procs {
		if s.parked {
			continue
		}
		if !r.thrSet[s.clos] {
			r.thrVal[s.clos] = r.throttleAt(s.clos, f)
			r.thrSet[s.clos] = true
		}
		total += r.procGbps(i, f*r.thrVal[s.clos])
	}
	return total
}

// Step advances the simulation by dt seconds.
func (r *Runner) Step(dt float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("sim: non-positive step %g", dt))
	}
	if r.useReference {
		r.stepReference(dt)
		return
	}
	if len(r.procs) == 0 {
		r.time += dt
		return
	}

	r.ensureOperatingPoint()
	inflation := r.lastInflation

	// Advance processes at the solved operating point.
	for i, s := range r.procs {
		if s.parked {
			// A parked core makes no progress but wall-clock time still
			// passes: charge empty cycles so cumulative IPC reflects the
			// lost throughput (this is what the EFU metric must see).
			s.proc.Cycles += dt * r.m.CyclesPerSecond()
			continue
		}
		t := r.throttles[s.clos]
		before := s.proc.MemBytes
		s.proc.AdvanceMissRef(&r.m, r.shares[i], r.opMiss[i], inflation*t, r.curBF, dt)
		r.closBytes[s.clos] += s.proc.MemBytes - before
	}
	r.time += dt
}

// coLocFactor returns the base-CPI co-location factor for the current
// process population.
func (r *Runner) coLocFactor() float64 {
	active := 0
	for _, s := range r.procs {
		if !s.parked {
			active++
		}
	}
	return r.m.CoLocFactor(active - 1)
}

// Inflation returns the memory-latency inflation factor of the last Step.
func (r *Runner) Inflation() float64 { return r.lastInflation }

// Utilisation returns the memory-link utilisation of the last Step.
func (r *Runner) Utilisation() float64 { return r.lastUtil }

// CoreCounters are the cumulative per-core performance counters.
type CoreCounters struct {
	Core         int
	Clos         int
	Name         string  // profile name, for reporting
	Instructions float64 // retired instructions
	Cycles       float64 // elapsed core cycles
	Completions  int     // whole-profile completions (restarts)
}

// IPC returns cumulative instructions per cycle.
func (c CoreCounters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// ClosCounters are the per-CLOS RDT-style monitoring counters.
type ClosCounters struct {
	Clos           int
	MemBytes       float64 // cumulative memory traffic (MBM-style)
	OccupancyBytes float64 // instantaneous LLC occupancy (CMT-style)
	Mask           uint64  // current capacity bit-mask
}

// Snapshot is a consistent view of all counters at the current time.
type Snapshot struct {
	Time  float64
	Cores []CoreCounters
	Clos  []ClosCounters
}

// Snapshot captures all counters. Occupancy is the model's steady-state
// estimate for the current allocation: the sum over the CLOS's processes
// of the bytes they keep resident in their current share.
func (r *Runner) Snapshot() Snapshot {
	var snap Snapshot
	r.SnapshotInto(&snap)
	return snap
}

// SnapshotInto fills snap with the current counters, reusing snap's Cores
// and Clos slices when their capacity suffices. Per-period monitoring
// (resctrl.Meter via Emu) calls this with a reused snapshot so sampling
// performs no allocation in steady state. The occupancy estimate is
// identical to Snapshot's: each unparked process keeps
// min(OccupancyDemand(share), share) bytes resident — the performance
// model's other outputs do not enter the snapshot, so no Perf evaluation
// is needed.
func (r *Runner) SnapshotInto(snap *Snapshot) {
	snap.Time = r.time
	if len(r.procs) > 0 {
		r.solveShares()
	}
	occ := growF64(r.occBuf, len(r.masks))
	r.occBuf = occ
	for c := range occ {
		occ[c] = 0
	}
	snap.Cores = snap.Cores[:0]
	snap.Clos = snap.Clos[:0]
	for i, s := range r.procs {
		if !s.parked {
			o := s.proc.PhaseRef().Curve.OccupancyDemand(r.shares[i])
			if o > r.shares[i] {
				o = r.shares[i]
			}
			occ[s.clos] += o
		}
		snap.Cores = append(snap.Cores, CoreCounters{
			Core:         s.core,
			Clos:         s.clos,
			Name:         s.proc.Profile.Name,
			Instructions: s.proc.Instructions,
			Cycles:       s.proc.Cycles,
			Completions:  s.proc.Completions,
		})
	}
	for c := range r.masks {
		snap.Clos = append(snap.Clos, ClosCounters{
			Clos:           c,
			MemBytes:       r.closBytes[c],
			OccupancyBytes: occ[c],
			Mask:           r.masks[c],
		})
	}
}

// grow helpers: reslice when capacity suffices, reallocate otherwise.
// Callers fully overwrite the live prefix before reading it.

func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

func growInt(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
