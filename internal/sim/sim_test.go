package sim

import (
	"math"
	"testing"
	"testing/quick"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/machine"
	"dicer/internal/mrc"
)

func testMachine() machine.Machine { return machine.Default() }

// mkApp builds a single-phase profile for simulator tests.
func mkApp(name string, cpi, apki, stream float64, wsMB, frac float64) app.Profile {
	var comps []mrc.Component
	if wsMB > 0 {
		comps = append(comps, mrc.Component{Bytes: wsMB * app.MB, Frac: frac})
	}
	return app.Profile{Name: name, Suite: "test", Class: app.ClassMixed,
		Phases: []app.Phase{{
			Name: "p", Instructions: 1e12, BaseCPI: cpi, APKI: apki,
			Curve: mrc.MustCurve(stream, comps...),
		}}}
}

func mustRunner(t *testing.T, clos int) *Runner {
	t.Helper()
	r, err := New(testMachine(), clos)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(machine.Machine{}, 2); err == nil {
		t.Fatal("expected error for invalid machine")
	}
	if _, err := New(testMachine(), 0); err == nil {
		t.Fatal("expected error for zero CLOS count")
	}
}

func TestAttachErrors(t *testing.T) {
	r := mustRunner(t, 2)
	prof := mkApp("a", 1, 5, 0.1, 1, 0.5)
	if err := r.Attach(-1, 0, prof); err == nil {
		t.Fatal("expected error for negative core")
	}
	if err := r.Attach(10, 0, prof); err == nil {
		t.Fatal("expected error for core out of range")
	}
	if err := r.Attach(0, 5, prof); err == nil {
		t.Fatal("expected error for clos out of range")
	}
	if err := r.Attach(0, 0, prof); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, 0, prof); err == nil {
		t.Fatal("expected error for occupied core")
	}
	if err := r.Attach(1, 0, app.Profile{Name: "bad"}); err == nil {
		t.Fatal("expected error for invalid profile")
	}
}

func TestSetMaskValidation(t *testing.T) {
	r := mustRunner(t, 2)
	if err := r.SetMask(0, 0); err == nil {
		t.Fatal("expected error for empty mask")
	}
	if err := r.SetMask(0, 0x5); err == nil {
		t.Fatal("expected error for non-contiguous mask")
	}
	if err := r.SetMask(0, uint64(1)<<25); err == nil {
		t.Fatal("expected error for mask beyond 20 ways")
	}
	if err := r.SetMask(2, 1); err == nil {
		t.Fatal("expected error for clos out of range")
	}
	if err := r.SetMask(0, cache.ContiguousMask(1, 19)); err != nil {
		t.Fatal(err)
	}
	if got := r.Mask(0); got != cache.ContiguousMask(1, 19) {
		t.Fatalf("mask readback = %#x", got)
	}
}

func TestStepAdvancesTime(t *testing.T) {
	r := mustRunner(t, 1)
	r.Step(0.25)
	r.Step(0.25)
	if got := r.Time(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("time = %g, want 0.5", got)
	}
}

func TestStepPanicsOnNonPositiveDt(t *testing.T) {
	r := mustRunner(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Step(0)
}

func TestAloneProcessGetsFullCache(t *testing.T) {
	r := mustRunner(t, 1)
	prof := mkApp("a", 0.8, 10, 0.1, 4, 0.5) // 4 MB working set
	if err := r.Attach(0, 0, prof); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	// With 25 MB available the 4 MB set is covered: miss = stream only.
	wantIPC := 1 / (0.8 + 10*0.1/1000*180)
	if got := r.Proc(0).IPC(); math.Abs(got-wantIPC) > 1e-9 {
		t.Fatalf("alone IPC = %g, want %g", got, wantIPC)
	}
}

func TestExclusivePartitionIsolation(t *testing.T) {
	r := mustRunner(t, 2)
	// HP: cache-sensitive 4MB app in CLOS 0 with 4 ways (5 MB): covered.
	hp := mkApp("hp", 0.8, 10, 0, 4, 0.5)
	be := mkApp("be", 0.8, 20, 0.5, 8, 0.4)
	if err := r.Attach(0, 0, hp); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if err := r.Attach(i, 1, be); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SetMask(0, cache.ContiguousMask(16, 4)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetMask(1, cache.ContiguousMask(0, 16)); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	// HP's exclusive 5 MB covers its 4 MB set: zero capacity misses even
	// with 9 hungry BEs (partition isolation); only the co-location CPI
	// penalty and bandwidth inflation may slow it.
	perf := r.Proc(0)
	cpiNoMiss := 0.8 * testMachine().CoLocFactor(9)
	if got := perf.Instructions / perf.Cycles; got < 1/(cpiNoMiss*1.01) {
		// IPC should be within a hair of the no-capacity-miss value.
		t.Fatalf("HP IPC = %g, want ~%g (isolated partition)", got, 1/cpiNoMiss)
	}
}

func TestSharedCacheDividedByPressure(t *testing.T) {
	r := mustRunner(t, 1)
	// Two identical cache-hungry apps share the full LLC: each should end
	// up with about half.
	prof := mkApp("a", 0.8, 20, 0.2, 30, 0.5) // 30 MB footprint each
	if err := r.Attach(0, 0, prof); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 0, prof); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	r.solveShares()
	total := r.shares[0] + r.shares[1]
	if math.Abs(total-float64(testMachine().LLCBytes)) > 1e-6*float64(testMachine().LLCBytes) {
		t.Fatalf("shares sum to %g, want full LLC %d", total, testMachine().LLCBytes)
	}
	if math.Abs(r.shares[0]-r.shares[1]) > 0.01*total {
		t.Fatalf("identical apps got asymmetric shares: %g vs %g", r.shares[0], r.shares[1])
	}
}

func TestSmallFootprintAppRetainsHotSet(t *testing.T) {
	r := mustRunner(t, 1)
	// A compute app with a small hot set shares the LLC with 9 streamers:
	// LRU retention (touch-rate water-filling with footprint caps) must
	// leave the hot set resident.
	hot := mkApp("hot", 0.6, 3, 0, 0.5, 0.5)
	stream := mkApp("str", 0.6, 25, 0.8, 0.2, 0.1)
	if err := r.Attach(0, 0, hot); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if err := r.Attach(i, 0, stream); err != nil {
			t.Fatal(err)
		}
	}
	r.Step(1)
	r.solveShares()
	if r.shares[0] < 0.5*app.MB {
		t.Fatalf("hot app share = %g, want >= its 0.5 MB footprint", r.shares[0])
	}
}

func TestBandwidthSaturationInflatesLatency(t *testing.T) {
	r := mustRunner(t, 1)
	for i := 0; i < 10; i++ {
		if err := r.Attach(i, 0, mkApp("s", 0.5, 30, 0.8, 0.5, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	r.Step(1)
	if r.Inflation() <= 1 {
		t.Fatalf("10 streamers should saturate the link; inflation = %g", r.Inflation())
	}
	if r.Utilisation() <= testMachine().Link.Knee {
		t.Fatalf("utilisation %g below knee", r.Utilisation())
	}
}

func TestLightLoadNoInflation(t *testing.T) {
	r := mustRunner(t, 1)
	if err := r.Attach(0, 0, mkApp("c", 0.5, 1, 0.05, 0.2, 0.5)); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	if got := r.Inflation(); got != 1 {
		t.Fatalf("light load inflation = %g, want 1", got)
	}
}

func TestSqueezeRaisesBandwidth(t *testing.T) {
	// The CT pathology: squeezing cache-hungry BEs into one way raises
	// their miss traffic vs a generous allocation.
	run := func(beWays int) float64 {
		r := mustRunner(t, 2)
		for i := 0; i < 9; i++ {
			if err := r.Attach(i, 1, mkApp("be", 0.85, 11, 0.18, 3.5, 0.58)); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.SetMask(1, cache.ContiguousMask(0, beWays)); err != nil {
			t.Fatal(err)
		}
		if err := r.SetMask(0, cache.ContiguousMask(beWays, 20-beWays)); err != nil {
			t.Fatal(err)
		}
		r.Step(1)
		snap := r.Snapshot()
		return snap.Clos[1].MemBytes
	}
	squeezed := run(1)
	generous := run(16)
	if squeezed <= generous {
		t.Fatalf("squeezed BEs moved %g bytes <= generous %g", squeezed, generous)
	}
}

func TestBWCap(t *testing.T) {
	r := mustRunner(t, 2)
	for i := 0; i < 9; i++ {
		if err := r.Attach(i, 1, mkApp("be", 0.5, 30, 0.8, 0.5, 0.1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SetBWCap(1, 20); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	snap := r.Snapshot()
	gbps := snap.Clos[1].MemBytes * 8 / 1e9
	if gbps > 21 {
		t.Fatalf("capped CLOS consumed %.1f Gbps, cap was 20", gbps)
	}
	if err := r.SetBWCap(1, -1); err == nil {
		t.Fatal("expected error for negative cap")
	}
	if err := r.SetBWCap(5, 1); err == nil {
		t.Fatal("expected error for clos out of range")
	}
}

func TestParking(t *testing.T) {
	r := mustRunner(t, 1)
	if err := r.Attach(0, 0, mkApp("a", 0.5, 10, 0.5, 1, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 0, mkApp("b", 0.5, 10, 0.5, 1, 0.3)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCoreParked(1, true); err != nil {
		t.Fatal(err)
	}
	if !r.CoreParked(1) {
		t.Fatal("core 1 should report parked")
	}
	r.Step(1)
	if got := r.Proc(1).Instructions; got != 0 {
		t.Fatalf("parked core retired %g instructions", got)
	}
	if got := r.Proc(0).Instructions; got == 0 {
		t.Fatal("unparked core did not run")
	}
	// Unpark and verify it resumes.
	if err := r.SetCoreParked(1, false); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	if got := r.Proc(1).Instructions; got == 0 {
		t.Fatal("unparked core did not resume")
	}
	if err := r.SetCoreParked(7, true); err == nil {
		t.Fatal("expected error parking an empty core")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	r := mustRunner(t, 2)
	if err := r.Attach(0, 0, mkApp("hp", 0.8, 10, 0.1, 2, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 1, mkApp("be", 0.8, 15, 0.3, 4, 0.4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r.Step(0.25)
	}
	snap := r.Snapshot()
	if snap.Time != r.Time() {
		t.Fatal("snapshot time mismatch")
	}
	if len(snap.Cores) != 2 || len(snap.Clos) != 2 {
		t.Fatalf("snapshot sizes: %d cores, %d clos", len(snap.Cores), len(snap.Clos))
	}
	for _, c := range snap.Cores {
		if c.Cycles <= 0 || c.Instructions <= 0 {
			t.Fatalf("core %d has empty counters: %+v", c.Core, c)
		}
		if c.IPC() <= 0 || c.IPC() > 4 {
			t.Fatalf("core %d IPC %g implausible", c.Core, c.IPC())
		}
	}
	var occ float64
	for _, g := range snap.Clos {
		if g.MemBytes < 0 || g.OccupancyBytes < 0 {
			t.Fatalf("negative counters: %+v", g)
		}
		occ += g.OccupancyBytes
	}
	if occ > float64(testMachine().LLCBytes)+1 {
		t.Fatalf("total occupancy %g exceeds LLC", occ)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Snapshot {
		r := mustRunner(t, 2)
		_ = r.Attach(0, 0, mkApp("hp", 0.8, 12, 0.2, 3, 0.5))
		for i := 1; i < 6; i++ {
			_ = r.Attach(i, 1, mkApp("be", 0.7, 18, 0.4, 2, 0.3))
		}
		_ = r.SetMask(0, cache.ContiguousMask(10, 10))
		_ = r.SetMask(1, cache.ContiguousMask(0, 10))
		for i := 0; i < 20; i++ {
			r.Step(0.25)
		}
		return r.Snapshot()
	}
	a, b := run(), run()
	for i := range a.Cores {
		if a.Cores[i].Instructions != b.Cores[i].Instructions {
			t.Fatalf("non-deterministic instructions on core %d", i)
		}
	}
}

func TestMaskChangeMidRunChangesPerformance(t *testing.T) {
	r := mustRunner(t, 2)
	if err := r.Attach(0, 0, mkApp("hp", 0.8, 15, 0, 8, 0.6)); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 1, mkApp("be", 0.8, 15, 0.2, 8, 0.5)); err != nil {
		t.Fatal(err)
	}
	// Phase 1: HP squeezed into 1 way.
	if err := r.SetMask(0, cache.ContiguousMask(19, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetMask(1, cache.ContiguousMask(0, 19)); err != nil {
		t.Fatal(err)
	}
	r.Step(1)
	ipcSqueezed := r.Proc(0).IPC()
	// Phase 2: give HP 10 ways.
	if err := r.SetMask(0, cache.ContiguousMask(10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetMask(1, cache.ContiguousMask(0, 10)); err != nil {
		t.Fatal(err)
	}
	before := r.Proc(0).Instructions
	r.Step(1)
	tm := testMachine()
	ipcAfter := (r.Proc(0).Instructions - before) / (1 * tm.CyclesPerSecond())
	if ipcAfter <= ipcSqueezed*1.2 {
		t.Fatalf("10 ways should be much faster than 1: %g vs %g", ipcAfter, ipcSqueezed)
	}
}

// Property: waterfill conserves capacity (never over-allocates), honours
// caps, and gives zero to zero-weight entries when others want capacity.
func TestPropertyWaterfill(t *testing.T) {
	f := func(wRaw, cRaw []uint8, capRaw uint16) bool {
		n := len(wRaw)
		if n == 0 || len(cRaw) < n {
			return true
		}
		if n > 10 {
			n = 10
		}
		weights := make([]float64, n)
		caps := make([]float64, n)
		active := make([]int, n)
		alloc := make([]float64, n)
		var totCap float64
		for i := 0; i < n; i++ {
			weights[i] = float64(wRaw[i] % 20)
			caps[i] = float64(cRaw[i]%50) + 1
			active[i] = i
			totCap += caps[i]
		}
		capacity := float64(capRaw%2000) + 1
		waterfill(capacity, weights, caps, active, alloc, nil)
		// The scratch-buffer variant must match the reference bit for bit.
		refAlloc := make([]float64, n)
		referenceWaterfill(capacity, weights, caps, active, refAlloc)
		var sum float64
		for i := 0; i < n; i++ {
			if alloc[i] != refAlloc[i] {
				return false
			}
			if alloc[i] < -1e-9 || alloc[i] > caps[i]+1e-6 {
				return false
			}
			sum += alloc[i]
		}
		if sum > capacity+1e-6 {
			return false
		}
		// Full utilisation when demand allows it.
		if totCap >= capacity && sum < capacity-1e-6 {
			// Zero-weight-only populations split evenly, still full.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-process cache shares never exceed the LLC in total, for
// random mask splits.
func TestPropertySharesBounded(t *testing.T) {
	f := func(split uint8, nBE uint8) bool {
		s := int(split%18) + 1
		n := int(nBE%9) + 1
		r, err := New(testMachine(), 2)
		if err != nil {
			return false
		}
		if err := r.Attach(0, 0, mkApp("hp", 0.8, 12, 0.1, 6, 0.5)); err != nil {
			return false
		}
		for i := 1; i <= n; i++ {
			if err := r.Attach(i, 1, mkApp("be", 0.7, 20, 0.4, 3, 0.4)); err != nil {
				return false
			}
		}
		if err := r.SetMask(0, cache.ContiguousMask(20-s, s)); err != nil {
			return false
		}
		if err := r.SetMask(1, cache.ContiguousMask(0, 20-s)); err != nil {
			return false
		}
		r.Step(0.5)
		r.solveShares()
		var sum float64
		for _, sh := range r.shares {
			if sh < 0 {
				return false
			}
			sum += sh
		}
		return sum <= float64(testMachine().LLCBytes)*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStepTenCores(b *testing.B) {
	r, _ := New(testMachine(), 2)
	_ = r.Attach(0, 0, app.MustByName("omnetpp1"))
	for i := 1; i < 10; i++ {
		_ = r.Attach(i, 1, app.MustByName("gcc_base1"))
	}
	_ = r.SetMask(0, cache.ContiguousMask(1, 19))
	_ = r.SetMask(1, cache.ContiguousMask(0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(0.25)
	}
}
