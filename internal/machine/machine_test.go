package machine

import (
	"math"
	"testing"
)

func TestDefaultMatchesPaperTable1(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cores != 10 {
		t.Errorf("cores = %d, want 10", m.Cores)
	}
	if m.FreqGHz != 2.2 {
		t.Errorf("freq = %g, want 2.2", m.FreqGHz)
	}
	if m.LLCBytes != 25<<20 {
		t.Errorf("LLC = %d, want 25 MB", m.LLCBytes)
	}
	if m.LLCWays != 20 {
		t.Errorf("ways = %d, want 20", m.LLCWays)
	}
	if math.Abs(m.Link.CapacityGBps-68.3) > 1e-9 {
		t.Errorf("link = %g, want 68.3 Gbps", m.Link.CapacityGBps)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	base := Default()
	mutations := []func(*Machine){
		func(m *Machine) { m.Cores = 0 },
		func(m *Machine) { m.FreqGHz = 0 },
		func(m *Machine) { m.LLCBytes = 0 },
		func(m *Machine) { m.LLCWays = 0 },
		func(m *Machine) { m.LLCWays = 65 },
		func(m *Machine) { m.LineBytes = 48 },
		func(m *Machine) { m.MemLatCycles = 0 },
		func(m *Machine) { m.CoLocCPIPenalty = -0.1 },
		func(m *Machine) { m.CoLocCPIPenalty = 1.5 },
		func(m *Machine) { m.Link.CapacityGBps = 0 },
	}
	for i, mut := range mutations {
		m := base
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestWayBytes(t *testing.T) {
	m := Default()
	want := float64(25<<20) / 20
	if got := m.WayBytes(); got != want {
		t.Fatalf("way bytes = %g, want %g (1.25 MB)", got, want)
	}
	if got := m.WaysBytes(2); got != 2*want {
		t.Fatalf("2 ways = %g, want %g", got, 2*want)
	}
}

func TestCoLocFactor(t *testing.T) {
	m := Default()
	if got := m.CoLocFactor(0); got != 1 {
		t.Fatalf("alone factor = %g, want 1", got)
	}
	if got := m.CoLocFactor(9); math.Abs(got-(1+m.CoLocCPIPenalty)) > 1e-12 {
		t.Fatalf("full-socket factor = %g, want %g", got, 1+m.CoLocCPIPenalty)
	}
	half := m.CoLocFactor(4)
	full := m.CoLocFactor(9)
	if !(1 < half && half < full) {
		t.Fatalf("factor not monotone: 1 < %g < %g expected", half, full)
	}
	single := Machine{Cores: 1, FreqGHz: 1, LLCBytes: 1 << 20, LLCWays: 4,
		LineBytes: 64, MemLatCycles: 100, CoLocCPIPenalty: 0.5}
	if got := single.CoLocFactor(3); got != 1 {
		t.Fatalf("single-core factor = %g, want 1", got)
	}
}

func TestCyclesPerSecond(t *testing.T) {
	m := Default()
	if got := m.CyclesPerSecond(); got != 2.2e9 {
		t.Fatalf("cycles/s = %g, want 2.2e9", got)
	}
}

func TestFullMask(t *testing.T) {
	m := Default()
	if got := m.FullMask(); got != 0xfffff {
		t.Fatalf("full mask = %#x, want 0xfffff", got)
	}
	m.LLCWays = 64
	if got := m.FullMask(); got != ^uint64(0) {
		t.Fatalf("64-way mask = %#x", got)
	}
}
