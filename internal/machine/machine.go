// Package machine describes the hardware platform being simulated: core
// count and frequency, LLC geometry, memory latency, and the shared memory
// link. The default matches Table 1 of the DICER paper (Intel Xeon E5-2630
// v4, Broadwell).
package machine

import (
	"fmt"

	"dicer/internal/membw"
)

// Machine is a server description. All simulator components take their
// geometry from here so an experiment can be re-run on a hypothetical
// machine (more ways, weaker link, more cores) by changing one value.
type Machine struct {
	Cores   int     // physical cores (SMT disabled, as in the paper)
	FreqGHz float64 // core clock

	LLCBytes     int     // total LLC capacity
	LLCWays      int     // associativity == number of allocatable ways
	LineBytes    int     // cache-line size
	MemLatCycles float64 // unloaded LLC-miss penalty in core cycles

	// CoLocCPIPenalty models the partition-independent interference of a
	// fully loaded socket (ring/mesh traffic, prefetcher pollution, shared
	// L2 TLB walkers): the base CPI of every process is inflated by up to
	// this fraction as the other cores fill up. Cache partitioning cannot
	// remove it — which is why even CT never keeps an HP fully unaffected
	// on real hardware (paper Fig. 1).
	CoLocCPIPenalty float64

	Link membw.Link
}

// Default returns the paper's platform: 10 cores at 2.2 GHz, 25 MB 20-way
// LLC, 64 B lines, 68.3 Gbps memory link. The 180-cycle unloaded miss
// penalty is a typical Broadwell LLC-miss-to-DRAM latency (~82 ns).
func Default() Machine {
	return Machine{
		Cores:           10,
		FreqGHz:         2.2,
		LLCBytes:        25 << 20,
		LLCWays:         20,
		LineBytes:       64,
		MemLatCycles:    180,
		CoLocCPIPenalty: 0.05,
		Link:            membw.DefaultLink(),
	}
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("machine: non-positive core count %d", m.Cores)
	}
	if m.FreqGHz <= 0 {
		return fmt.Errorf("machine: non-positive frequency %g", m.FreqGHz)
	}
	if m.LLCBytes <= 0 {
		return fmt.Errorf("machine: non-positive LLC size %d", m.LLCBytes)
	}
	if m.LLCWays <= 0 || m.LLCWays > 64 {
		return fmt.Errorf("machine: LLC ways %d outside [1,64]", m.LLCWays)
	}
	if m.LineBytes <= 0 || m.LineBytes&(m.LineBytes-1) != 0 {
		return fmt.Errorf("machine: line size %d not a positive power of two", m.LineBytes)
	}
	if m.MemLatCycles <= 0 {
		return fmt.Errorf("machine: non-positive memory latency %g", m.MemLatCycles)
	}
	if m.CoLocCPIPenalty < 0 || m.CoLocCPIPenalty > 1 {
		return fmt.Errorf("machine: co-location CPI penalty %g outside [0,1]", m.CoLocCPIPenalty)
	}
	return m.Link.Validate()
}

// WayBytes returns the capacity of one LLC way.
func (m Machine) WayBytes() float64 {
	return float64(m.LLCBytes) / float64(m.LLCWays)
}

// WaysBytes returns the capacity of n LLC ways.
func (m Machine) WaysBytes(n int) float64 {
	return float64(n) * m.WayBytes()
}

// CoLocFactor returns the base-CPI multiplier applied when otherActive
// other cores are running work (linear in socket occupancy, maxing out at
// CoLocCPIPenalty on a full socket).
func (m Machine) CoLocFactor(otherActive int) float64 {
	if m.Cores <= 1 || otherActive <= 0 {
		return 1
	}
	return 1 + m.CoLocCPIPenalty*float64(otherActive)/float64(m.Cores-1)
}

// CyclesPerSecond returns core cycles per second. Pointer receiver: the
// per-step hot loops call it through *Machine, and a value receiver would
// copy the whole struct on every call.
func (m *Machine) CyclesPerSecond() float64 { return m.FreqGHz * 1e9 }

// FullMask returns the CBM selecting every LLC way.
func (m Machine) FullMask() uint64 {
	if m.LLCWays >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(m.LLCWays)) - 1
}
