package trace

import "testing"

func TestParseSizeSuffixes(t *testing.T) {
	cases := map[string]uint64{
		"4096": 4096, "512k": 512 << 10, "8m": 8 << 20, "1g": 1 << 30, "2M": 2 << 20,
	}
	for s, want := range cases {
		got, err := parseSize(s)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "12q3", "k"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q): expected error", bad)
		}
	}
}

func TestParseSpecSimpleGenerators(t *testing.T) {
	cases := []struct {
		spec      string
		footprint uint64
	}{
		{"loop:1m", 1 << 20},
		{"stream", 0},
		{"strided:64k:128", 64 << 10},
		{"zipf:2m", 2 << 20},
		{"zipf:2m:0.5", 2 << 20},
	}
	for _, tc := range cases {
		g, err := ParseSpec(tc.spec, 1)
		if err != nil {
			t.Fatalf("%q: %v", tc.spec, err)
		}
		if got := g.Footprint(); got != tc.footprint {
			t.Errorf("%q footprint = %d, want %d", tc.spec, got, tc.footprint)
		}
		// Must produce addresses without panicking.
		for i := 0; i < 100; i++ {
			g.Next()
		}
	}
}

func TestParseSpecMix(t *testing.T) {
	g, err := ParseSpec("mix(loop:1m@0.5,stream@0.2,zipf:4m:1.2@0.3)", 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.Footprint() != 0 {
		t.Fatal("mix with a stream should report unbounded footprint")
	}
	// Components live in disjoint regions: collect addresses and confirm
	// at least three distinct high regions appear.
	regions := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		regions[g.Next()>>40] = true
	}
	if len(regions) < 3 {
		t.Fatalf("mix components not in distinct regions: %v", regions)
	}
}

func TestParseSpecNestedMix(t *testing.T) {
	g, err := ParseSpec("mix(mix(loop:64k@1,loop:128k@1)@0.6,stream@0.4)", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		g.Next()
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"loop",
		"loop:1m:2m",
		"stream:1m",
		"strided:1m",
		"zipf",
		"zipf:1m:x",
		"bogus:1m",
		"mix(loop:1m)",   // missing weight
		"mix(loop:1m@x)", // bad weight
		"mix(bogus@1)",   // bad sub-spec
		"mix(loop:1m@0)", // zero weight (rejected by NewMix)
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q): expected error", spec)
		}
	}
}

func TestParseSpecDeterministic(t *testing.T) {
	a, err := ParseSpec("mix(zipf:1m:0.8@0.7,stream@0.3)", 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("mix(zipf:1m:0.8@0.7,stream@0.3)", 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same spec and seed diverged")
		}
	}
}

func TestSplitTop(t *testing.T) {
	got := splitTop("a,b(c,d),e")
	if len(got) != 3 || got[0] != "a" || got[1] != "b(c,d)" || got[2] != "e" {
		t.Fatalf("splitTop = %v", got)
	}
}
