package trace

import "testing"

// FuzzParseSpec checks that arbitrary spec strings never panic and that
// accepted specs yield working generators. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzParseSpec ./internal/trace` explores further.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"loop:1m",
		"stream",
		"strided:64k:128",
		"zipf:8m:0.9",
		"mix(loop:1m@0.5,stream@0.2,zipf:4m:1.2@0.3)",
		"mix(mix(loop:64k@1,loop:128k@1)@0.6,stream@0.4)",
		"",
		"loop",
		"mix(",
		"mix()",
		"zipf:0",
		"loop:999999999g",
		"mix(loop:1m@-1)",
		"mix(loop:1m@0.5", // unbalanced
	} {
		f.Add(seed, uint64(1))
	}
	f.Fuzz(func(t *testing.T, spec string, seed uint64) {
		g, err := ParseSpec(spec, seed)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if g == nil {
			t.Fatalf("ParseSpec(%q) returned nil generator without error", spec)
		}
		for i := 0; i < 50; i++ {
			if a := g.Next(); a%LineBytes != 0 {
				t.Fatalf("spec %q produced unaligned address %d", spec, a)
			}
		}
		g.Reset()
		first := g.Next()
		g.Reset()
		if again := g.Next(); again != first {
			t.Fatalf("spec %q not deterministic after Reset", spec)
		}
	})
}
