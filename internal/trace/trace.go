// Package trace provides deterministic synthetic memory-address stream
// generators used to drive the trace-based LLC simulator (internal/cache)
// and to validate the analytic miss-ratio curves (internal/mrc).
//
// The generators produce cache-line granular addresses (the low bits inside
// a line are irrelevant to an LLC model and are always zero). All generators
// are deterministic: the same construction parameters and seed yield the
// same stream, which keeps every experiment in the repository reproducible.
//
// Generator families mirror the qualitative access patterns of the SPEC CPU
// 2006 and PARSEC workloads that the DICER paper evaluates on:
//
//   - Loop: repeated sequential sweeps over a fixed working set
//     (dense numerical kernels, e.g. milc, lbm inner loops).
//   - Stream: monotonically increasing addresses that never reuse a line
//     (pure streaming, e.g. libquantum, stream-like phases of bwaves).
//   - Strided: sequential sweeps with a non-unit stride (column-major
//     array walks, stencil codes).
//   - Zipf: random accesses over a working set with a Zipf popularity skew
//     (pointer-heavy codes such as mcf, omnetpp, xalancbmk).
//   - Mix: a weighted interleaving of other generators, which is how the
//     multi-component working-set mixtures of internal/app are realised as
//     concrete traces.
package trace

import (
	"errors"
	"fmt"
	"math"
)

// LineBytes is the cache-line size assumed by all generators. Generators
// emit addresses that are multiples of LineBytes.
const LineBytes = 64

// Generator produces an infinite, deterministic stream of memory addresses.
type Generator interface {
	// Next returns the next address in the stream.
	Next() uint64
	// Reset rewinds the generator to its initial state.
	Reset()
	// Footprint returns the total number of distinct bytes the generator
	// can touch (0 means unbounded, e.g. for Stream).
	Footprint() uint64
}

// rng is a splitmix64 pseudo-random generator. It is tiny, fast, of high
// enough quality for workload synthesis, and — unlike math/rand's global
// state — trivially reproducible and allocation free.
type rng struct {
	state uint64
	seed  uint64
}

func newRNG(seed uint64) *rng { return &rng{state: seed, seed: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) reset() { r.state = r.seed }

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n). n must be > 0.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		panic("trace: intn(0)")
	}
	return r.next() % n
}

// Loop sweeps sequentially over a working set of Size bytes, wrapping back
// to Base when the end is reached. Every line in the working set is touched
// once per sweep, which gives the classic "all hits if the cache covers the
// working set, all misses otherwise" LRU behaviour.
type Loop struct {
	Base uint64 // starting byte address (rounded down to a line)
	Size uint64 // working-set size in bytes

	pos uint64
}

// NewLoop returns a Loop generator over [base, base+size).
func NewLoop(base, size uint64) (*Loop, error) {
	if size < LineBytes {
		return nil, fmt.Errorf("trace: loop working set %d smaller than one line", size)
	}
	return &Loop{Base: base &^ (LineBytes - 1), Size: size}, nil
}

// Next implements Generator.
func (l *Loop) Next() uint64 {
	a := l.Base + l.pos
	l.pos += LineBytes
	if l.pos >= l.Size {
		l.pos = 0
	}
	return a
}

// Reset implements Generator.
func (l *Loop) Reset() { l.pos = 0 }

// Footprint implements Generator.
func (l *Loop) Footprint() uint64 { return l.Size }

// Stream produces monotonically increasing addresses with no reuse. It
// models pure streaming traffic: every access is a compulsory miss in any
// finite cache.
type Stream struct {
	Base uint64

	pos uint64
}

// NewStream returns a Stream generator starting at base.
func NewStream(base uint64) *Stream {
	return &Stream{Base: base &^ (LineBytes - 1)}
}

// Next implements Generator.
func (s *Stream) Next() uint64 {
	a := s.Base + s.pos
	s.pos += LineBytes
	return a
}

// Reset implements Generator.
func (s *Stream) Reset() { s.pos = 0 }

// Footprint implements Generator. Stream is unbounded, so it reports 0.
func (s *Stream) Footprint() uint64 { return 0 }

// Strided sweeps over a working set with a fixed stride, wrapping around.
// A stride that is a multiple of the line size touches a subset of lines on
// each pass; strides smaller than a line degrade to a Loop.
type Strided struct {
	Base   uint64
	Size   uint64
	Stride uint64

	pos uint64
}

// NewStrided returns a Strided generator.
func NewStrided(base, size, stride uint64) (*Strided, error) {
	if size < LineBytes {
		return nil, fmt.Errorf("trace: strided working set %d smaller than one line", size)
	}
	if stride == 0 {
		return nil, errors.New("trace: zero stride")
	}
	return &Strided{Base: base &^ (LineBytes - 1), Size: size, Stride: stride}, nil
}

// Next implements Generator.
func (g *Strided) Next() uint64 {
	a := (g.Base + g.pos) &^ (LineBytes - 1)
	g.pos += g.Stride
	if g.pos >= g.Size {
		g.pos %= g.Size
	}
	return a
}

// Reset implements Generator.
func (g *Strided) Reset() { g.pos = 0 }

// Footprint implements Generator.
func (g *Strided) Footprint() uint64 { return g.Size }

// Zipf draws random line addresses from a working set with a Zipf(s)
// popularity distribution over lines: line k is accessed with probability
// proportional to 1/(k+1)^s. s=0 degrades to uniform random.
//
// The implementation uses inverse-transform sampling over a precomputed
// cumulative table when the working set is small, and a two-level
// approximation (hot head table + uniform tail) when it is large, keeping
// construction O(min(lines, maxTable)).
type Zipf struct {
	Base uint64
	Size uint64
	S    float64

	lines    uint64
	headCum  []float64 // cumulative probability of the first len(headCum) lines
	headMass float64   // total probability mass of the head
	r        *rng
}

// maxZipfTable bounds the size of the explicit cumulative table.
const maxZipfTable = 1 << 16

// NewZipf returns a Zipf generator over a working set of size bytes with
// skew s, seeded deterministically with seed.
func NewZipf(base, size uint64, s float64, seed uint64) (*Zipf, error) {
	if size < LineBytes {
		return nil, fmt.Errorf("trace: zipf working set %d smaller than one line", size)
	}
	if s < 0 {
		return nil, fmt.Errorf("trace: negative zipf skew %g", s)
	}
	z := &Zipf{
		Base:  base &^ (LineBytes - 1),
		Size:  size,
		S:     s,
		lines: size / LineBytes,
		r:     newRNG(seed),
	}
	head := z.lines
	if head > maxZipfTable {
		head = maxZipfTable
	}
	z.headCum = make([]float64, head)
	var total float64
	// Normalising constant over the head; the tail (if any) is modelled as
	// uniform with the density of the last head entry.
	for k := uint64(0); k < head; k++ {
		total += zipfWeight(k, s)
		z.headCum[k] = total
	}
	tailPerLine := zipfWeight(head-1, s)
	tailMass := tailPerLine * float64(z.lines-head)
	grand := total + tailMass
	for k := range z.headCum {
		z.headCum[k] /= grand
	}
	z.headMass = total / grand
	return z, nil
}

func zipfWeight(k uint64, s float64) float64 {
	if s == 0 {
		return 1
	}
	return math.Pow(float64(k+1), -s)
}

// Next implements Generator.
func (z *Zipf) Next() uint64 {
	u := z.r.float64()
	var line uint64
	if u < z.headMass || uint64(len(z.headCum)) == z.lines {
		// Binary search the cumulative head table.
		lo, hi := 0, len(z.headCum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if z.headCum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		line = uint64(lo)
	} else {
		// Uniform over the tail.
		tail := z.lines - uint64(len(z.headCum))
		line = uint64(len(z.headCum)) + z.r.intn(tail)
	}
	return z.Base + line*LineBytes
}

// Reset implements Generator.
func (z *Zipf) Reset() { z.r.reset() }

// Footprint implements Generator.
func (z *Zipf) Footprint() uint64 { return z.Size }

// Component pairs a Generator with a selection weight for use in a Mix.
type Component struct {
	Gen    Generator
	Weight float64
}

// Mix interleaves several generators, choosing the source of each access at
// random in proportion to the component weights. This realises multi-level
// working-set mixtures ("a hot 256 KiB array plus a warm 8 MiB table plus a
// streaming input") as a single address stream.
type Mix struct {
	comps []Component
	cum   []float64
	r     *rng
}

// NewMix builds a Mix from the given components. Weights must be positive.
func NewMix(seed uint64, comps ...Component) (*Mix, error) {
	if len(comps) == 0 {
		return nil, errors.New("trace: empty mix")
	}
	m := &Mix{comps: comps, cum: make([]float64, len(comps)), r: newRNG(seed)}
	var total float64
	for i, c := range comps {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("trace: component %d has non-positive weight %g", i, c.Weight)
		}
		if c.Gen == nil {
			return nil, fmt.Errorf("trace: component %d has nil generator", i)
		}
		total += c.Weight
		m.cum[i] = total
	}
	for i := range m.cum {
		m.cum[i] /= total
	}
	return m, nil
}

// Next implements Generator.
func (m *Mix) Next() uint64 {
	u := m.r.float64()
	for i, c := range m.cum {
		if u < c || i == len(m.cum)-1 {
			return m.comps[i].Gen.Next()
		}
	}
	return m.comps[len(m.comps)-1].Gen.Next()
}

// Reset implements Generator.
func (m *Mix) Reset() {
	m.r.reset()
	for _, c := range m.comps {
		c.Gen.Reset()
	}
}

// Footprint implements Generator. It is the sum of component footprints and
// reports 0 (unbounded) if any component is unbounded.
func (m *Mix) Footprint() uint64 {
	var total uint64
	for _, c := range m.comps {
		f := c.Gen.Footprint()
		if f == 0 {
			return 0
		}
		total += f
	}
	return total
}

// Collect drains n addresses from g into a freshly allocated slice. It is a
// convenience for tests and for feeding the cache simulator.
func Collect(g Generator, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
