package trace

import (
	"testing"
	"testing/quick"
)

func TestLoopCyclesThroughWorkingSet(t *testing.T) {
	l, err := NewLoop(0, 4*LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 64, 128, 192, 0, 64}
	for i, w := range want {
		if got := l.Next(); got != w {
			t.Fatalf("access %d: got %d, want %d", i, got, w)
		}
	}
}

func TestLoopRejectsTinyWorkingSet(t *testing.T) {
	if _, err := NewLoop(0, LineBytes-1); err == nil {
		t.Fatal("expected error for sub-line working set")
	}
}

func TestLoopBaseAlignment(t *testing.T) {
	l, err := NewLoop(100, 2*LineBytes) // base rounds down to 64
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Next(); got != 64 {
		t.Fatalf("base not line-aligned: got %d", got)
	}
}

func TestLoopFootprint(t *testing.T) {
	l, _ := NewLoop(0, 1<<20)
	if got := l.Footprint(); got != 1<<20 {
		t.Fatalf("footprint = %d, want %d", got, 1<<20)
	}
}

func TestStreamNeverRepeats(t *testing.T) {
	s := NewStream(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		a := s.Next()
		if seen[a] {
			t.Fatalf("stream repeated address %d", a)
		}
		seen[a] = true
	}
}

func TestStreamMonotone(t *testing.T) {
	s := NewStream(1 << 30)
	prev := s.Next()
	for i := 0; i < 1000; i++ {
		a := s.Next()
		if a <= prev {
			t.Fatalf("stream not monotone: %d after %d", a, prev)
		}
		prev = a
	}
}

func TestStreamUnboundedFootprint(t *testing.T) {
	if got := NewStream(0).Footprint(); got != 0 {
		t.Fatalf("stream footprint = %d, want 0 (unbounded)", got)
	}
}

func TestStreamReset(t *testing.T) {
	s := NewStream(0)
	first := s.Next()
	s.Next()
	s.Reset()
	if got := s.Next(); got != first {
		t.Fatalf("reset did not rewind: got %d, want %d", got, first)
	}
}

func TestStridedVisitsSubset(t *testing.T) {
	g, err := NewStrided(0, 8*LineBytes, 2*LineBytes)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 16; i++ {
		seen[g.Next()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("stride-2 over 8 lines should touch 4 lines, touched %d", len(seen))
	}
}

func TestStridedRejectsZeroStride(t *testing.T) {
	if _, err := NewStrided(0, 1<<20, 0); err == nil {
		t.Fatal("expected error for zero stride")
	}
}

func TestStridedStaysInFootprint(t *testing.T) {
	g, err := NewStrided(0, 1<<16, 192)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if a := g.Next(); a >= 1<<16 {
			t.Fatalf("strided escaped working set: %d", a)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	z, err := NewZipf(1<<20, 1<<20, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		a := z.Next()
		if a < 1<<20 || a >= 2<<20 {
			t.Fatalf("zipf out of range: %d", a)
		}
		if a%LineBytes != 0 {
			t.Fatalf("zipf not line aligned: %d", a)
		}
	}
}

func TestZipfSkewConcentratesAccesses(t *testing.T) {
	z, err := NewZipf(0, 1<<20, 1.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	headLines := uint64(16)
	head := 0
	for i := 0; i < n; i++ {
		if z.Next()/LineBytes < headLines {
			head++
		}
	}
	// With s=1.2 over 16384 lines, the first 16 lines should capture far
	// more than their uniform share (16/16384 ≈ 0.1%).
	if frac := float64(head) / n; frac < 0.05 {
		t.Fatalf("zipf head fraction %.4f, want > 0.05", frac)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z, err := NewZipf(0, 64*LineBytes, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	const n = 64 * 1000
	for i := 0; i < n; i++ {
		counts[z.Next()/LineBytes]++
	}
	for line, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("line %d count %d far from uniform 1000", line, c)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, _ := NewZipf(0, 1<<20, 0.8, 123)
	b, _ := NewZipf(0, 1<<20, 0.8, 123)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, x, y)
		}
	}
}

func TestZipfRejectsNegativeSkew(t *testing.T) {
	if _, err := NewZipf(0, 1<<20, -1, 1); err == nil {
		t.Fatal("expected error for negative skew")
	}
}

func TestZipfReset(t *testing.T) {
	z, _ := NewZipf(0, 1<<20, 1, 5)
	first := Collect(z, 100)
	z.Reset()
	second := Collect(z, 100)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset changed sequence at %d", i)
		}
	}
}

func TestMixWeights(t *testing.T) {
	l1, _ := NewLoop(0, 1<<20)
	l2, _ := NewLoop(1<<30, 1<<20)
	m, err := NewMix(1, Component{l1, 3}, Component{l2, 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var low int
	for i := 0; i < n; i++ {
		if m.Next() < 1<<30 {
			low++
		}
	}
	frac := float64(low) / n
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("3:1 mix gave low fraction %.3f, want ~0.75", frac)
	}
}

func TestMixRejectsBadInputs(t *testing.T) {
	l, _ := NewLoop(0, 1<<20)
	if _, err := NewMix(1); err == nil {
		t.Fatal("expected error for empty mix")
	}
	if _, err := NewMix(1, Component{l, 0}); err == nil {
		t.Fatal("expected error for zero weight")
	}
	if _, err := NewMix(1, Component{nil, 1}); err == nil {
		t.Fatal("expected error for nil generator")
	}
}

func TestMixFootprint(t *testing.T) {
	l1, _ := NewLoop(0, 1<<20)
	l2, _ := NewLoop(1<<30, 2<<20)
	m, _ := NewMix(1, Component{l1, 1}, Component{l2, 1})
	if got := m.Footprint(); got != 3<<20 {
		t.Fatalf("mix footprint = %d, want %d", got, 3<<20)
	}
	m2, _ := NewMix(1, Component{l1, 1}, Component{NewStream(0), 1})
	if got := m2.Footprint(); got != 0 {
		t.Fatalf("mix with stream footprint = %d, want 0", got)
	}
}

func TestMixReset(t *testing.T) {
	l1, _ := NewLoop(0, 1<<20)
	z, _ := NewZipf(1<<30, 1<<20, 1, 3)
	m, _ := NewMix(77, Component{l1, 1}, Component{z, 1})
	first := Collect(m, 500)
	m.Reset()
	second := Collect(m, 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("mix reset changed sequence at %d", i)
		}
	}
}

func TestCollectLength(t *testing.T) {
	s := NewStream(0)
	if got := len(Collect(s, 37)); got != 37 {
		t.Fatalf("Collect returned %d addresses, want 37", got)
	}
}

// Property: every generator emits line-aligned addresses inside its
// footprint (when bounded), for arbitrary seeds and sizes.
func TestPropertyGeneratorsAlignedAndBounded(t *testing.T) {
	f := func(seedRaw uint64, sizeRaw uint16, skewRaw uint8) bool {
		size := (uint64(sizeRaw)%1024 + 1) * LineBytes
		skew := float64(skewRaw%30) / 10
		z, err := NewZipf(0, size, skew, seedRaw)
		if err != nil {
			return false
		}
		l, err := NewLoop(0, size)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if a := z.Next(); a%LineBytes != 0 || a >= size {
				return false
			}
			if a := l.Next(); a%LineBytes != 0 || a >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitmix-based rng floats stay in [0,1).
func TestPropertyRNGFloatRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z, _ := NewZipf(0, 64<<20, 1.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkMixNext(b *testing.B) {
	l, _ := NewLoop(0, 1<<20)
	z, _ := NewZipf(1<<30, 8<<20, 1.0, 2)
	m, _ := NewMix(1, Component{l, 2}, Component{z, 1}, Component{NewStream(1 << 40), 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Next()
	}
}
