package trace

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a Generator from a compact textual description, the
// format used by cmd/dicer-cachesim:
//
//	loop:<size>              sequential loop over <size> bytes
//	stream                   never-reused streaming accesses
//	strided:<size>:<stride>  strided sweep
//	zipf:<size>[:<skew>]     zipf-popularity random accesses (default 1.0)
//	mix(a@w,b@w,...)         weighted mixture of sub-specs
//
// Sizes accept k/m/g suffixes (KiB/MiB/GiB): "loop:512k", "zipf:8m:0.9",
// "mix(loop:1m@0.5,stream@0.2,zipf:4m:1.2@0.3)".
//
// Each distinct sub-generator is placed in its own address region so
// mixtures never alias.
func ParseSpec(spec string, seed uint64) (Generator, error) {
	p := &specParser{seed: seed}
	return p.parse(strings.TrimSpace(spec))
}

type specParser struct {
	seed   uint64
	region uint64 // distinct base region per component
}

// base returns the next non-overlapping base address (1 TiB apart).
func (p *specParser) base() uint64 {
	p.region++
	return p.region << 40
}

func (p *specParser) parse(spec string) (Generator, error) {
	if spec == "" {
		return nil, fmt.Errorf("trace: empty spec")
	}
	if inner, ok := cutWrapper(spec, "mix(", ")"); ok {
		return p.parseMix(inner)
	}
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "loop":
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: loop spec %q wants loop:<size>", spec)
		}
		size, err := parseSize(parts[1])
		if err != nil {
			return nil, err
		}
		return NewLoop(p.base(), size)
	case "stream":
		if len(parts) != 1 {
			return nil, fmt.Errorf("trace: stream spec %q takes no arguments", spec)
		}
		return NewStream(p.base()), nil
	case "strided":
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: strided spec %q wants strided:<size>:<stride>", spec)
		}
		size, err := parseSize(parts[1])
		if err != nil {
			return nil, err
		}
		stride, err := parseSize(parts[2])
		if err != nil {
			return nil, err
		}
		return NewStrided(p.base(), size, stride)
	case "zipf":
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("trace: zipf spec %q wants zipf:<size>[:<skew>]", spec)
		}
		size, err := parseSize(parts[1])
		if err != nil {
			return nil, err
		}
		skew := 1.0
		if len(parts) == 3 {
			skew, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad zipf skew %q", parts[2])
			}
		}
		p.seed++
		return NewZipf(p.base(), size, skew, p.seed)
	}
	return nil, fmt.Errorf("trace: unknown generator %q", parts[0])
}

func (p *specParser) parseMix(inner string) (Generator, error) {
	var comps []Component
	for _, field := range splitTop(inner) {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		at := strings.LastIndex(field, "@")
		if at < 0 {
			return nil, fmt.Errorf("trace: mix component %q missing @weight", field)
		}
		weight, err := strconv.ParseFloat(field[at+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad mix weight in %q", field)
		}
		gen, err := p.parse(field[:at])
		if err != nil {
			return nil, err
		}
		comps = append(comps, Component{Gen: gen, Weight: weight})
	}
	p.seed++
	return NewMix(p.seed, comps...)
}

// splitTop splits on commas not nested inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// cutWrapper strips prefix/suffix if both are present at the outermost
// level.
func cutWrapper(s, prefix, suffix string) (string, bool) {
	if strings.HasPrefix(s, prefix) && strings.HasSuffix(s, suffix) {
		return s[len(prefix) : len(s)-len(suffix)], true
	}
	return "", false
}

// ParseSpecSize parses a size with k/m/g suffixes ("512k", "8m", "1g")
// into bytes; exported for the CLI tools that accept the same syntax.
func ParseSpecSize(s string) (uint64, error) { return parseSize(s) }

// parseSize parses "4096", "512k", "8m", "1g" into bytes.
func parseSize(s string) (uint64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("trace: empty size")
	}
	mult := uint64(1)
	switch s[len(s)-1] {
	case 'k':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad size %q", s)
	}
	return n * mult, nil
}
