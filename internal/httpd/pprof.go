package httpd

import (
	"net/http"
	"net/http/pprof"
)

// AddPprof mounts the standard net/http/pprof handlers on mux under
// /debug/pprof/. The serve CLIs use their own ServeMux (never
// http.DefaultServeMux), so the blank-import side effect of net/http/pprof
// does not reach them; this explicit registration is the only way in, and
// the CLIs gate it behind a -pprof flag so profiling endpoints are
// opt-in.
func AddPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
