package httpd

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventStreamDelivers(t *testing.T) {
	es := NewEventStream()
	srv := httptest.NewServer(es)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	// First frame is the ": ok" comment.
	line, err := r.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": ok") {
		t.Fatalf("greeting = %q, err %v", line, err)
	}

	// Wait for the subscription before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for es.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	es.Publish("alert", `{"firing":true}`)

	var got []string
	for len(got) < 2 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		line = strings.TrimRight(line, "\n")
		if line != "" {
			got = append(got, line)
		}
	}
	if got[0] != "event: alert" || got[1] != `data: {"firing":true}` {
		t.Fatalf("frames = %q", got)
	}
}

func TestEventStreamConcurrent(t *testing.T) {
	es := NewEventStream()
	srv := httptest.NewServer(es)
	defer srv.Close()

	// Each client reads a handful of events then disconnects; publishers
	// keep publishing until every client is gone, so nobody depends on
	// receiving one particular (droppable) event. The race detector owns
	// this test.
	const clients = 4
	var wg sync.WaitGroup
	var active atomic.Int32
	active.Store(clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer active.Add(-1)
			resp, err := http.Get(srv.URL)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			r := bufio.NewReader(resp.Body)
			seen := 0
			for seen < 10 {
				line, err := r.ReadString('\n')
				if err != nil {
					t.Errorf("client read: %v after %d events", err, seen)
					return
				}
				if strings.HasPrefix(line, "data: ") {
					seen++
				}
			}
		}()
	}
	var pubs sync.WaitGroup
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for active.Load() > 0 {
				es.Publish("tick", "x")
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	pubs.Wait()
}

func TestEventStreamDropsSlowClient(t *testing.T) {
	es := NewEventStream()
	ch := es.subscribe()
	defer es.unsubscribe(ch)
	// Fill the buffer and keep publishing: must never block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < subBuffer*4; i++ {
			es.Publish("tick", "x")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if n := len(ch); n != subBuffer {
		t.Fatalf("buffered %d, want capped at %d", n, subBuffer)
	}
}

func TestAddPprof(t *testing.T) {
	mux := http.NewServeMux()
	AddPprof(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}
}
