package httpd

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestNewSetsTimeouts(t *testing.T) {
	srv := New(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set")
	}
}

// TestServeUntilGracefulShutdown serves one request, closes the stop
// channel and expects a clean nil return.
func TestServeUntilGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	})
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- ServeUntil(New(ln.Addr().String(), mux), ln, stop) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeUntil did not return after stop")
	}
}

// TestServeUntilPropagatesServeError: a listener closed under the server
// should surface as an error, not a clean exit.
func TestServeUntilPropagatesServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	ln.Close()
	if err := ServeUntil(New(ln.Addr().String(), http.NewServeMux()), ln, make(chan struct{})); err == nil {
		t.Fatal("want error from closed listener")
	}
}
