package httpd

import (
	"fmt"
	"io"
	"net/http"
	"sync"
)

// subBuffer is each subscriber's event buffer; a subscriber that falls
// this far behind starts dropping events rather than blocking the
// publisher (the monitoring loop must never wait on a slow client).
const subBuffer = 16

// EventStream is a minimal Server-Sent Events broker: Publish fans an
// event out to every connected client of its ServeHTTP handler. It
// exists for the /events endpoints — pushing alert transitions to
// operators without polling — and deliberately implements only the
// subset of SSE the CLIs need: named events with data payloads,
// per-subscriber drop-on-overflow, graceful detach on client
// disconnect.
//
// An EventStream is safe for concurrent Publish and ServeHTTP.
type EventStream struct {
	mu      sync.Mutex
	subs    map[chan string]struct{}
	dropped int64
}

// NewEventStream returns an empty broker.
func NewEventStream() *EventStream {
	return &EventStream{subs: map[chan string]struct{}{}}
}

// Publish sends one event (SSE "event:" name plus one-line "data:"
// payload, typically JSON) to every subscriber. Subscribers with full
// buffers miss the event; Publish never blocks.
func (s *EventStream) Publish(event, data string) {
	msg := fmt.Sprintf("event: %s\ndata: %s\n\n", event, data)
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- msg:
		default: // slow client: drop rather than stall the control loop
			s.dropped++
		}
	}
	s.mu.Unlock()
}

// Subscribers reports the number of connected clients.
func (s *EventStream) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Dropped reports the lifetime count of events discarded because a
// subscriber's buffer was full — the operator's signal that a client
// is reading too slowly to be trusted as a complete event log.
func (s *EventStream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteProm renders the broker's counters as Prometheus text; the serve
// modes append it to their /metrics output.
func (s *EventStream) WriteProm(w io.Writer) {
	s.mu.Lock()
	subs, dropped := len(s.subs), s.dropped
	s.mu.Unlock()
	fmt.Fprintf(w, "# HELP dicer_sse_subscribers Connected /events subscribers.\n# TYPE dicer_sse_subscribers gauge\ndicer_sse_subscribers %d\n", subs)
	fmt.Fprintf(w, "# HELP dicer_sse_dropped_total Events dropped on full subscriber buffers.\n# TYPE dicer_sse_dropped_total counter\ndicer_sse_dropped_total %d\n", dropped)
}

func (s *EventStream) subscribe() chan string {
	ch := make(chan string, subBuffer)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch
}

func (s *EventStream) unsubscribe(ch chan string) {
	s.mu.Lock()
	delete(s.subs, ch)
	s.mu.Unlock()
}

// ServeHTTP implements the SSE endpoint: it streams published events to
// the client until the client disconnects (or the server drains).
func (s *EventStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line both confirms the stream to the client
	// and forces the headers out.
	fmt.Fprint(w, ": ok\n\n")
	fl.Flush()

	ch := s.subscribe()
	defer s.unsubscribe(ch)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-ch:
			if _, err := fmt.Fprint(w, msg); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
