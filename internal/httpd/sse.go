package httpd

import (
	"fmt"
	"net/http"
	"sync"
)

// subBuffer is each subscriber's event buffer; a subscriber that falls
// this far behind starts dropping events rather than blocking the
// publisher (the monitoring loop must never wait on a slow client).
const subBuffer = 16

// EventStream is a minimal Server-Sent Events broker: Publish fans an
// event out to every connected client of its ServeHTTP handler. It
// exists for the /events endpoints — pushing alert transitions to
// operators without polling — and deliberately implements only the
// subset of SSE the CLIs need: named events with data payloads,
// per-subscriber drop-on-overflow, graceful detach on client
// disconnect.
//
// An EventStream is safe for concurrent Publish and ServeHTTP.
type EventStream struct {
	mu   sync.Mutex
	subs map[chan string]struct{}
}

// NewEventStream returns an empty broker.
func NewEventStream() *EventStream {
	return &EventStream{subs: map[chan string]struct{}{}}
}

// Publish sends one event (SSE "event:" name plus one-line "data:"
// payload, typically JSON) to every subscriber. Subscribers with full
// buffers miss the event; Publish never blocks.
func (s *EventStream) Publish(event, data string) {
	msg := fmt.Sprintf("event: %s\ndata: %s\n\n", event, data)
	s.mu.Lock()
	for ch := range s.subs {
		select {
		case ch <- msg:
		default: // slow client: drop rather than stall the control loop
		}
	}
	s.mu.Unlock()
}

// Subscribers reports the number of connected clients.
func (s *EventStream) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

func (s *EventStream) subscribe() chan string {
	ch := make(chan string, subBuffer)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch
}

func (s *EventStream) unsubscribe(ch chan string) {
	s.mu.Lock()
	delete(s.subs, ch)
	s.mu.Unlock()
}

// ServeHTTP implements the SSE endpoint: it streams published events to
// the client until the client disconnects (or the server drains).
func (s *EventStream) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An immediate comment line both confirms the stream to the client
	// and forces the headers out.
	fmt.Fprint(w, ": ok\n\n")
	fl.Flush()

	ch := s.subscribe()
	defer s.unsubscribe(ch)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case msg := <-ch:
			if _, err := fmt.Fprint(w, msg); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
