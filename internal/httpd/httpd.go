// Package httpd is the shared HTTP serving shim for the dicer command
// line tools: an http.Server with sane header/idle timeouts (a bare
// http.ListenAndServe has none, so one stalled client header read holds
// a connection goroutine forever) and graceful drain on SIGINT/SIGTERM.
package httpd

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

const (
	// readHeaderTimeout bounds how long a client may take to send its
	// request headers.
	readHeaderTimeout = 5 * time.Second
	// idleTimeout reclaims keep-alive connections.
	idleTimeout = 120 * time.Second
	// drainTimeout bounds graceful shutdown before in-flight requests
	// are cut off.
	drainTimeout = 5 * time.Second
)

// New returns a hardened http.Server for addr and handler.
func New(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// ListenAndServe serves h on addr until the process receives SIGINT or
// SIGTERM, then drains in-flight requests and returns nil. Any other
// serve failure (e.g. the port is taken) is returned as-is.
func ListenAndServe(addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	stop := make(chan struct{})
	go func() {
		<-sigs
		close(stop)
	}()
	return ServeUntil(New(addr, h), ln, stop)
}

// ServeUntil serves on ln until stop closes, then shuts the server down
// gracefully (bounded by drainTimeout). A clean shutdown returns nil.
// Split from ListenAndServe so tests can drive the lifecycle without
// sending signals.
func ServeUntil(srv *http.Server, ln net.Listener, stop <-chan struct{}) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
