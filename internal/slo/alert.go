// Package slo implements multi-window SLO burn-rate alerting. It is a
// leaf package — no internal dependencies — so both the diagnostics
// layer (per-node and fleet-aggregate monitors, live and offline) and
// the fleet layer's migration engine can evaluate the same burn-rate
// rules without an import cycle: diag imports fleet for trace types,
// and fleet needs the alerter to drive SLO-burn migration, so the
// alerter lives below both. internal/diag re-exports these types under
// their historical names.
package slo

import "fmt"

// BurnWindow is one window of a multi-window burn-rate rule: the
// violation fraction over the most recent Periods monitoring periods,
// divided by the error budget, must reach Burn for the window to vote
// to fire. Pairing a short window (fast detection) with a long one
// (sustained burn) is the standard defence against paging on blips —
// the approach SLO-attainment systems use instead of point samples.
type BurnWindow struct {
	Periods int     `json:"periods"`
	Burn    float64 `json:"burn"`
}

// AlertConfig parameterises the SLO burn-rate alerter.
type AlertConfig struct {
	// Budget is the error budget: the fraction of periods allowed to
	// violate the slowdown target (e.g. 0.1 = 10% of periods may miss
	// SLO). A window's burn rate is violationFraction / Budget.
	Budget float64 `json:"budget"`
	// Windows are the burn-rate rules; the alert fires only when every
	// window's burn rate is at or above its threshold. Windows[0] must
	// be the shortest — it also drives clearing.
	Windows []BurnWindow `json:"windows"`
	// ClearFraction scales the short window's firing threshold into the
	// clearing threshold: the alert clears only after the short window's
	// burn rate stays below ClearFraction × Windows[0].Burn for
	// ClearHold consecutive periods (hysteresis against flapping).
	ClearFraction float64 `json:"clear_fraction"`
	ClearHold     int     `json:"clear_hold"`
}

// DefaultAlertConfig returns the stock rule: 10% error budget, a
// 5-period fast window at 2× burn plus a 60-period slow window at 1×,
// clearing after 3 consecutive periods below half the fast threshold.
func DefaultAlertConfig() AlertConfig {
	return AlertConfig{
		Budget: 0.10,
		Windows: []BurnWindow{
			{Periods: 5, Burn: 2},
			{Periods: 60, Burn: 1},
		},
		ClearFraction: 0.5,
		ClearHold:     3,
	}
}

// Validate reports configuration errors.
func (c AlertConfig) Validate() error {
	if c.Budget <= 0 || c.Budget > 1 {
		return fmt.Errorf("slo: alert budget %g outside (0,1]", c.Budget)
	}
	if len(c.Windows) == 0 {
		return fmt.Errorf("slo: alert needs at least one burn window")
	}
	prev := 0
	for _, w := range c.Windows {
		if w.Periods < 1 {
			return fmt.Errorf("slo: burn window of %d periods", w.Periods)
		}
		if w.Burn <= 0 {
			return fmt.Errorf("slo: non-positive burn threshold %g", w.Burn)
		}
		if w.Periods < prev {
			return fmt.Errorf("slo: burn windows must be ordered short to long")
		}
		prev = w.Periods
	}
	if c.ClearFraction <= 0 || c.ClearFraction > 1 {
		return fmt.Errorf("slo: clear fraction %g outside (0,1]", c.ClearFraction)
	}
	if c.ClearHold < 1 {
		return fmt.Errorf("slo: clear hold %d < 1", c.ClearHold)
	}
	return nil
}

// AlertEvent is one alert state transition.
type AlertEvent struct {
	// Period is the monitoring period the transition happened at.
	Period int `json:"period"`
	// Firing is the new state (true = fired, false = cleared).
	Firing bool `json:"firing"`
	// ShortBurn and LongBurn are the shortest and longest windows' burn
	// rates at the transition.
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// AlertState is an alerter snapshot, the unit /alerts serves.
type AlertState struct {
	Firing     bool      `json:"firing"`
	Since      int       `json:"since,omitempty"` // period of the last transition
	Burns      []float64 `json:"burns"`           // per window, short to long
	Periods    int       `json:"periods"`
	Violations float64   `json:"violations"` // Σ violation fractions observed
	Fires      int       `json:"fires"`      // lifetime fire transitions
}

// burnRing is a fixed ring of violation fractions with a running sum.
type burnRing struct {
	buf []float64
	sum float64
	pos int
}

func (r *burnRing) push(v float64) {
	r.sum += v - r.buf[r.pos]
	r.buf[r.pos] = v
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
}

// fraction returns the mean violation fraction over the window. The
// divisor is the full window size even before it fills: periods not yet
// seen count as clean, so a run's first violating period cannot fire a
// long window on its own.
func (r *burnRing) fraction() float64 {
	return r.sum / float64(len(r.buf))
}

// Alerter evaluates a multi-window burn-rate rule over a stream of
// per-period violation fractions (0 or 1 for a single HP, the violating
// node fraction for a fleet aggregate). Step is O(windows) and
// allocation-free in steady state (BenchmarkAlerterStep pins this), so
// one alerter per node costs nothing on the monitoring path.
//
// An Alerter is not safe for concurrent use; the monitors lock.
type Alerter struct {
	cfg   AlertConfig
	rings []burnRing
	burns []float64

	period  int
	firing  bool
	since   int
	calm    int // consecutive clearing-eligible periods while firing
	violSum float64
	fires   int
}

// NewAlerter builds an alerter; invalid configurations panic (configs
// come from code or validated flags, not user data files).
func NewAlerter(cfg AlertConfig) *Alerter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Alerter{cfg: cfg, burns: make([]float64, len(cfg.Windows))}
	a.rings = make([]burnRing, len(cfg.Windows))
	for i, w := range cfg.Windows {
		a.rings[i].buf = make([]float64, w.Periods)
	}
	return a
}

// Config returns the alerter's configuration.
func (a *Alerter) Config() AlertConfig { return a.cfg }

// Firing reports whether the alert is currently firing.
func (a *Alerter) Firing() bool { return a.firing }

// Step feeds one period's violation fraction (clamped to [0,1]) and
// reports whether the alert transitioned, with the transition event.
func (a *Alerter) Step(violFrac float64) (AlertEvent, bool) {
	if violFrac < 0 {
		violFrac = 0
	} else if violFrac > 1 {
		violFrac = 1
	}
	p := a.period
	a.period++
	a.violSum += violFrac

	fireVote := true
	for i := range a.rings {
		a.rings[i].push(violFrac)
		burn := a.rings[i].fraction() / a.cfg.Budget
		a.burns[i] = burn
		if burn < a.cfg.Windows[i].Burn {
			fireVote = false
		}
	}

	switch {
	case !a.firing && fireVote:
		a.firing = true
		a.since = p
		a.calm = 0
		a.fires++
		return a.transition(p), true
	case a.firing:
		if a.burns[0] < a.cfg.ClearFraction*a.cfg.Windows[0].Burn {
			a.calm++
		} else {
			a.calm = 0
		}
		if a.calm >= a.cfg.ClearHold {
			a.firing = false
			a.since = p
			a.calm = 0
			return a.transition(p), true
		}
	}
	return AlertEvent{}, false
}

func (a *Alerter) transition(period int) AlertEvent {
	return AlertEvent{
		Period:    period,
		Firing:    a.firing,
		ShortBurn: a.burns[0],
		LongBurn:  a.burns[len(a.burns)-1],
	}
}

// Burns returns the current burn rate per window, short to long. The
// slice is reused across Steps; callers that retain it must copy.
func (a *Alerter) Burns() []float64 { return a.burns }

// State snapshots the alerter for serving. Allocates; not for the hot
// path.
func (a *Alerter) State() AlertState {
	return AlertState{
		Firing:     a.firing,
		Since:      a.since,
		Burns:      append([]float64(nil), a.burns...),
		Periods:    a.period,
		Violations: a.violSum,
		Fires:      a.fires,
	}
}
