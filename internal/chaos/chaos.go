// Package chaos is a deterministic fault-injection layer for the resctrl
// substrate. It wraps any resctrl.System and perturbs the two directions
// a cache-partitioning controller talks to hardware:
//
//   - Monitoring (Counters reads): complete counter dropout, frozen/stale
//     readings that repeat the previous snapshot, and multiplicative
//     noise jitter on per-period instruction/cycle/occupancy/traffic
//     deltas — the failure modes of real CMT/MBM counters (RMID
//     recycling, MSR read glitches, sampling skew).
//   - Actuation (SetCBM writes): schemata-write rejection (the write
//     errors and nothing changes) and delayed actuation (the write is
//     accepted but lands k counter-reads late), as happens when the
//     resctrl filesystem is contended or a CLOS update races the
//     monitoring loop.
//
// Every fault is drawn from a seeded PRNG in a fixed call order, so a run
// replays identically for a fixed (Config, seed) — a failing soak seed is
// a reproducible test case. The DICER paper's Listing 3 reset/validate
// step exists precisely because production controllers face these faults;
// this package lets the test suite face them systematically.
//
// The fault clock ticks on Counters() calls: the monitoring loop reads
// counters exactly once per period (resctrl.Meter.Sample), so one read is
// one period. Pending delayed writes land at the start of the read that
// falls DelayPeriods after they were issued.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"dicer/internal/resctrl"
)

// ErrInjected tags every error the chaos layer fabricates. Harnesses that
// tolerate injected faults (the soak loop, Scenario.Run with chaos
// enabled) match it with errors.Is and keep running; any other error
// stays fatal.
var ErrInjected = errors.New("chaos: injected fault")

// Config is a fault schedule. The zero value injects nothing; every knob
// is independent so schedules can isolate one fault class or combine
// them. Probabilities are per counter read (monitoring faults) or per
// SetCBM call (actuation faults).
type Config struct {
	// Name labels the schedule in reports and soak results.
	Name string

	// DropoutProb is the probability that a counter read returns an
	// empty snapshot (no cores, no groups) — a complete monitoring
	// dropout. The meter re-baselines on the empty reading, so the next
	// period sees a spurious bandwidth spike, exactly as a userspace
	// controller experiences an MSR read glitch.
	DropoutProb float64

	// FreezeProb is the probability that a freeze begins: the next
	// FreezePeriods reads (including this one) re-serve the previous
	// snapshot verbatim, time included. Deltas collapse to zero — the
	// counters look alive but stale.
	FreezeProb float64
	// FreezePeriods is the length of one freeze in counter reads
	// (default 1 when a freeze fires with a zero length).
	FreezePeriods int

	// JitterPct applies multiplicative noise to per-period deltas of
	// instructions, cycles and memory traffic, and to instantaneous
	// occupancy: each quantity is scaled by a factor drawn uniformly
	// from [1-JitterPct, 1+JitterPct]. Cumulative counters stay
	// monotone (factors are positive); only the per-period readings the
	// controller consumes get noisy.
	JitterPct float64

	// WriteFailProb is the probability that SetCBM is rejected with an
	// error wrapping ErrInjected; the installed mask does not change.
	WriteFailProb float64

	// WriteDelayProb is the probability that an accepted SetCBM is
	// deferred: it returns nil immediately but takes effect
	// DelayPeriods counter reads later.
	WriteDelayProb float64
	// DelayPeriods is the actuation delay in counter reads (default 1
	// when a delay fires with a zero length).
	DelayPeriods int
}

// Validate reports schedule configuration errors.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropoutProb", c.DropoutProb},
		{"FreezeProb", c.FreezeProb},
		{"WriteFailProb", c.WriteFailProb},
		{"WriteDelayProb", c.WriteDelayProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if c.JitterPct < 0 || c.JitterPct >= 1 {
		return fmt.Errorf("chaos: JitterPct %g outside [0,1)", c.JitterPct)
	}
	if c.FreezePeriods < 0 || c.DelayPeriods < 0 {
		return fmt.Errorf("chaos: negative fault duration (freeze %d, delay %d)",
			c.FreezePeriods, c.DelayPeriods)
	}
	return nil
}

// Active reports whether the schedule injects any fault at all.
func (c Config) Active() bool {
	return c.DropoutProb > 0 || c.FreezeProb > 0 || c.JitterPct > 0 ||
		c.WriteFailProb > 0 || c.WriteDelayProb > 0
}

// Stats counts the faults a System actually injected, so tests can assert
// a schedule fired and reports can show what a run survived. The JSON
// tags are part of the trace-record schema (internal/obs) — per-period
// fault annotations embed a Stats delta.
type Stats struct {
	Reads          int `json:"reads"`           // Counters() calls observed
	Dropouts       int `json:"dropouts"`        // empty snapshots served
	FrozenReads    int `json:"frozen"`          // stale snapshots served
	JitteredReads  int `json:"jittered"`        // reads with noise applied
	Writes         int `json:"writes"`          // SetCBM calls observed
	WritesRejected int `json:"writes_rejected"` // SetCBM calls errored
	WritesDelayed  int `json:"writes_delayed"`  // SetCBM calls deferred
}

// Sub returns the per-field difference s - prev: the faults injected
// between two snapshots of a running system's cumulative stats. The
// observability recorder uses it for per-period fault annotations.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:          s.Reads - prev.Reads,
		Dropouts:       s.Dropouts - prev.Dropouts,
		FrozenReads:    s.FrozenReads - prev.FrozenReads,
		JitteredReads:  s.JitteredReads - prev.JitteredReads,
		Writes:         s.Writes - prev.Writes,
		WritesRejected: s.WritesRejected - prev.WritesRejected,
		WritesDelayed:  s.WritesDelayed - prev.WritesDelayed,
	}
}

// Add returns the per-field sum s + d — the inverse of Sub, for
// re-aggregating per-period fault deltas.
func (s Stats) Add(d Stats) Stats {
	return Stats{
		Reads:          s.Reads + d.Reads,
		Dropouts:       s.Dropouts + d.Dropouts,
		FrozenReads:    s.FrozenReads + d.FrozenReads,
		JitteredReads:  s.JitteredReads + d.JitteredReads,
		Writes:         s.Writes + d.Writes,
		WritesRejected: s.WritesRejected + d.WritesRejected,
		WritesDelayed:  s.WritesDelayed + d.WritesDelayed,
	}
}

// Injected reports whether any fault at all is counted (reads and writes
// are bookkeeping, not faults).
func (s Stats) Injected() bool {
	return s.Dropouts > 0 || s.FrozenReads > 0 || s.JitteredReads > 0 ||
		s.WritesRejected > 0 || s.WritesDelayed > 0
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d (dropout=%d frozen=%d jittered=%d) writes=%d (rejected=%d delayed=%d)",
		s.Reads, s.Dropouts, s.FrozenReads, s.JitteredReads,
		s.Writes, s.WritesRejected, s.WritesDelayed)
}

// pendingWrite is a delayed SetCBM waiting to land.
type pendingWrite struct {
	due  int // lands when reads >= due
	clos int
	mask uint64
}

// System wraps an inner resctrl.System with a deterministic fault
// schedule. It implements resctrl.System; allocation-independent calls
// (NumWays, NumClos, CBM, ...) pass through untouched.
type System struct {
	inner resctrl.System
	cfg   Config
	rng   *rand.Rand

	stats      Stats
	freezeLeft int
	lastInner  resctrl.Counters // previous snapshot of the inner system
	lastOut    resctrl.Counters // previous snapshot served to the caller
	haveLast   bool
	pending    []pendingWrite
	lastIssued map[int]uint64 // clos -> mask of the newest SetCBM attempt
}

// New wraps inner with the given fault schedule and seed. It panics on an
// invalid schedule (construct-time misuse, like MustNew elsewhere in the
// repository); use Config.Validate to check first.
func New(inner resctrl.System, cfg Config, seed int64) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &System{
		inner:      inner,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		lastIssued: map[int]uint64{},
	}
}

// Stats returns the fault counts so far.
func (s *System) Stats() Stats { return s.stats }

// Config returns the fault schedule.
func (s *System) Config() Config { return s.cfg }

// PendingWrites returns the number of delayed SetCBM writes not yet
// landed.
func (s *System) PendingWrites() int { return len(s.pending) }

// ActuationClean reports whether the installed masks agree with the
// newest SetCBM attempt for every CLOS written so far — i.e. no write is
// in flight and no rejection left the hardware behind the caller's
// intent. The invariant checker asserts intent/installed consistency
// only when this holds (quiescence).
func (s *System) ActuationClean() bool {
	if len(s.pending) > 0 {
		return false
	}
	for clos, mask := range s.lastIssued {
		if s.inner.CBM(clos) != mask {
			return false
		}
	}
	return true
}

// Drain applies all pending delayed writes immediately, returning the
// number landed. Soak harnesses call it before final invariant checks.
func (s *System) Drain() int {
	n := len(s.pending)
	s.flushDue(1 << 30)
	return n
}

// flushDue lands every pending write with due <= now, in issue order.
func (s *System) flushDue(now int) {
	kept := s.pending[:0]
	for _, w := range s.pending {
		if w.due <= now {
			// The write was validated when accepted; the inner system
			// may still reject it (it cannot: masks were legal then and
			// legality is state-independent), in which case it is lost —
			// which is itself a fault the controller must survive.
			_ = s.inner.SetCBM(w.clos, w.mask)
		} else {
			kept = append(kept, w)
		}
	}
	s.pending = kept
}

// NumWays implements resctrl.System.
func (s *System) NumWays() int { return s.inner.NumWays() }

// NumClos implements resctrl.System.
func (s *System) NumClos() int { return s.inner.NumClos() }

// SetCBM implements resctrl.System, injecting write rejection and delayed
// actuation per the schedule.
func (s *System) SetCBM(clos int, mask uint64) error {
	s.stats.Writes++
	s.lastIssued[clos] = mask
	if s.cfg.WriteFailProb > 0 && s.rng.Float64() < s.cfg.WriteFailProb {
		s.stats.WritesRejected++
		return fmt.Errorf("%w: schemata write rejected (clos %d, mask %#x)",
			ErrInjected, clos, mask)
	}
	// A newer write to a CLOS supersedes that CLOS's pending delayed
	// writes — the final schemata write wins, as on real hardware; an
	// old write must not land later and clobber a newer one.
	s.dropPending(clos)
	if s.cfg.WriteDelayProb > 0 && s.rng.Float64() < s.cfg.WriteDelayProb {
		delay := s.cfg.DelayPeriods
		if delay < 1 {
			delay = 1
		}
		s.stats.WritesDelayed++
		s.pending = append(s.pending, pendingWrite{
			due: s.stats.Reads + delay, clos: clos, mask: mask,
		})
		return nil
	}
	return s.inner.SetCBM(clos, mask)
}

// dropPending discards pending delayed writes for a CLOS.
func (s *System) dropPending(clos int) {
	kept := s.pending[:0]
	for _, w := range s.pending {
		if w.clos != clos {
			kept = append(kept, w)
		}
	}
	s.pending = kept
}

// CBM implements resctrl.System: it reads the installed (inner) mask —
// configuration reads are reliable even when monitoring counters are not.
func (s *System) CBM(clos int) uint64 { return s.inner.CBM(clos) }

// SetMBACap implements resctrl.System (passes through unfaulted; the
// schedule targets the CAT/CMT/MBM path the DICER controller exercises).
func (s *System) SetMBACap(clos int, gbps float64) error { return s.inner.SetMBACap(clos, gbps) }

// LinkCapacityGbps implements resctrl.System.
func (s *System) LinkCapacityGbps() float64 { return s.inner.LinkCapacityGbps() }

// Counters implements resctrl.System. Each call advances the fault clock:
// due delayed writes land first, then the schedule decides between a
// frozen replay, a dropout, and a (possibly jittered) real reading.
func (s *System) Counters() resctrl.Counters {
	s.stats.Reads++
	s.flushDue(s.stats.Reads)

	// Frozen: re-serve the previous output verbatim (time included, so
	// the meter sees dt = 0 — counters alive but stale).
	if s.freezeLeft > 0 && s.haveLast {
		s.freezeLeft--
		s.stats.FrozenReads++
		return cloneCounters(s.lastOut)
	}
	if s.cfg.FreezeProb > 0 && s.rng.Float64() < s.cfg.FreezeProb && s.haveLast {
		n := s.cfg.FreezePeriods
		if n < 1 {
			n = 1
		}
		s.freezeLeft = n - 1
		s.stats.FrozenReads++
		return cloneCounters(s.lastOut)
	}

	cur := s.inner.Counters()

	// Dropout: serve an empty snapshot. The inner baseline still
	// advances, so recovery exhibits the re-baselining spike a real
	// controller sees after an MSR read glitch.
	if s.cfg.DropoutProb > 0 && s.rng.Float64() < s.cfg.DropoutProb {
		s.stats.Dropouts++
		s.lastInner = cur
		out := resctrl.Counters{Time: cur.Time}
		s.lastOut = out
		s.haveLast = true
		return out
	}

	if s.cfg.JitterPct <= 0 || !s.haveLast {
		s.lastInner = cur
		s.lastOut = cur
		s.haveLast = true
		return cloneCounters(cur)
	}

	// Jitter: perturb per-period deltas multiplicatively and rebuild
	// cumulative counters on top of the previously served values, so the
	// stream the caller sees stays monotone while every per-period
	// reading is noisy.
	s.stats.JitteredReads++
	out := resctrl.Counters{Time: cur.Time}
	prevIn := indexCores(s.lastInner.Cores)
	prevOut := indexCores(s.lastOut.Cores)
	for _, c := range cur.Cores {
		pi, po := prevIn[c.Core], prevOut[c.Core]
		jc := c
		jc.Instructions = po.Instructions + (c.Instructions-pi.Instructions)*s.factor()
		jc.Cycles = po.Cycles + (c.Cycles-pi.Cycles)*s.factor()
		out.Cores = append(out.Cores, jc)
	}
	prevInG := indexGroups(s.lastInner.Groups)
	prevOutG := indexGroups(s.lastOut.Groups)
	for _, g := range cur.Groups {
		pi, po := prevInG[g.Clos], prevOutG[g.Clos]
		jg := g
		jg.OccupancyBytes = g.OccupancyBytes * s.factor()
		jg.MemBytes = po.MemBytes + (g.MemBytes-pi.MemBytes)*s.factor()
		out.Groups = append(out.Groups, jg)
	}
	s.lastInner = cur
	s.lastOut = out
	return cloneCounters(out)
}

// factor draws one multiplicative jitter factor from [1-j, 1+j].
func (s *System) factor() float64 {
	j := s.cfg.JitterPct
	return 1 - j + 2*j*s.rng.Float64()
}

func indexCores(cs []resctrl.CoreSample) map[int]resctrl.CoreSample {
	m := make(map[int]resctrl.CoreSample, len(cs))
	for _, c := range cs {
		m[c.Core] = c
	}
	return m
}

func indexGroups(gs []resctrl.GroupSample) map[int]resctrl.GroupSample {
	m := make(map[int]resctrl.GroupSample, len(gs))
	for _, g := range gs {
		m[g.Clos] = g
	}
	return m
}

// cloneCounters deep-copies a snapshot so callers cannot alias the
// wrapper's retained state.
func cloneCounters(c resctrl.Counters) resctrl.Counters {
	out := resctrl.Counters{Time: c.Time}
	out.Cores = append([]resctrl.CoreSample(nil), c.Cores...)
	out.Groups = append([]resctrl.GroupSample(nil), c.Groups...)
	return out
}

// ParkCore forwards thread-packing to the inner system when it supports
// it (the ext.BEManager policy type-asserts for this capability; wrapping
// in chaos must not hide it).
func (s *System) ParkCore(core int) error {
	if p, ok := s.inner.(interface{ ParkCore(int) error }); ok {
		return p.ParkCore(core)
	}
	return fmt.Errorf("chaos: inner system has no core parking")
}

// UnparkCore forwards to the inner system when supported.
func (s *System) UnparkCore(core int) error {
	if p, ok := s.inner.(interface{ UnparkCore(int) error }); ok {
		return p.UnparkCore(core)
	}
	return fmt.Errorf("chaos: inner system has no core parking")
}

// CoreParked forwards to the inner system when supported.
func (s *System) CoreParked(core int) bool {
	if p, ok := s.inner.(interface{ CoreParked(int) bool }); ok {
		return p.CoreParked(core)
	}
	return false
}

var _ resctrl.System = (*System)(nil)

// Schedules returns the named fault schedules the soak harness and CLI
// expose. Each isolates one fault class except "storm", which combines
// them all at moderated rates.
func Schedules() []Config {
	return []Config{
		{Name: "dropout", DropoutProb: 0.08},
		{Name: "freeze", FreezeProb: 0.06, FreezePeriods: 3},
		{Name: "jitter", JitterPct: 0.10},
		{Name: "write-reject", WriteFailProb: 0.25},
		{Name: "delayed-actuation", WriteDelayProb: 0.50, DelayPeriods: 2},
		{Name: "storm", DropoutProb: 0.03, FreezeProb: 0.03, FreezePeriods: 2,
			JitterPct: 0.05, WriteFailProb: 0.10, WriteDelayProb: 0.20, DelayPeriods: 1},
	}
}

// ScheduleByName looks up a named schedule from Schedules. The special
// name "none" returns an inactive schedule.
func ScheduleByName(name string) (Config, error) {
	if name == "none" {
		return Config{Name: "none"}, nil
	}
	for _, c := range Schedules() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("chaos: unknown schedule %q (have none, %s)", name, scheduleNames())
}

func scheduleNames() string {
	s := ""
	for i, c := range Schedules() {
		if i > 0 {
			s += ", "
		}
		s += c.Name
	}
	return s
}
