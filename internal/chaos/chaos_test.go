package chaos

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"dicer/internal/app"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"

	"dicer/internal/machine"
)

// newSys builds a small simulated platform (HP + 3 BEs) wrapped in the
// given schedule.
func newSys(t *testing.T, cfg Config, seed int64) (*System, *sim.Runner) {
	t.Helper()
	m := machine.Default()
	r, err := sim.New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, policy.HPClos, app.MustByName("omnetpp1")); err != nil {
		t.Fatal(err)
	}
	for core := 1; core <= 3; core++ {
		if err := r.Attach(core, policy.BEClos, app.MustByName("gcc_base1")); err != nil {
			t.Fatal(err)
		}
	}
	return New(resctrl.NewEmu(r, false), cfg, seed), r
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{DropoutProb: -0.1},
		{DropoutProb: 1.5},
		{FreezeProb: 2},
		{JitterPct: 1},
		{JitterPct: -0.2},
		{WriteFailProb: -1},
		{WriteDelayProb: 1.01},
		{FreezePeriods: -1},
		{DelayPeriods: -3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
	for _, c := range append(Schedules(), Config{}) {
		if err := c.Validate(); err != nil {
			t.Errorf("schedule %q: %v", c.Name, err)
		}
	}
}

func TestActive(t *testing.T) {
	if (Config{}).Active() {
		t.Error("zero config must be inactive")
	}
	for _, c := range Schedules() {
		if !c.Active() {
			t.Errorf("schedule %q inactive", c.Name)
		}
	}
}

func TestScheduleByName(t *testing.T) {
	for _, want := range Schedules() {
		got, err := ScheduleByName(want.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%q: got %+v want %+v", want.Name, got, want)
		}
	}
	if c, err := ScheduleByName("none"); err != nil || c.Active() {
		t.Errorf("none: %+v, %v", c, err)
	}
	if _, err := ScheduleByName("bogus"); err == nil {
		t.Error("expected error for unknown schedule")
	}
}

func TestInactivePassThrough(t *testing.T) {
	sys, r := newSys(t, Config{}, 1)
	if err := policy.SplitWays(sys, 10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Step(0.5)
	}
	got := sys.Counters()
	want := resctrl.NewEmu(r, false).Counters()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("inactive chaos altered counters:\n got %+v\nwant %+v", got, want)
	}
	if sys.Stats().Dropouts+sys.Stats().FrozenReads+sys.Stats().JitteredReads+
		sys.Stats().WritesRejected+sys.Stats().WritesDelayed != 0 {
		t.Errorf("inactive chaos injected faults: %v", sys.Stats())
	}
}

func TestDropoutServesEmptySnapshots(t *testing.T) {
	sys, r := newSys(t, Config{DropoutProb: 0.5}, 42)
	dropped, served := 0, 0
	for i := 0; i < 60; i++ {
		r.Step(1)
		c := sys.Counters()
		if len(c.Cores) == 0 && len(c.Groups) == 0 {
			dropped++
		} else {
			served++
		}
	}
	if dropped == 0 || served == 0 {
		t.Fatalf("dropout 0.5 over 60 reads: %d dropped, %d served", dropped, served)
	}
	if sys.Stats().Dropouts != dropped {
		t.Errorf("stats dropouts %d, observed %d", sys.Stats().Dropouts, dropped)
	}
}

func TestFreezeRepeatsSnapshots(t *testing.T) {
	sys, r := newSys(t, Config{FreezeProb: 0.3, FreezePeriods: 2}, 7)
	var prev resctrl.Counters
	frozen := 0
	for i := 0; i < 60; i++ {
		r.Step(1)
		c := sys.Counters()
		if i > 0 && c.Time == prev.Time {
			frozen++
		}
		prev = c
	}
	if frozen == 0 {
		t.Fatal("freeze schedule never served a stale snapshot")
	}
	if sys.Stats().FrozenReads != frozen {
		t.Errorf("stats frozen %d, observed %d", sys.Stats().FrozenReads, frozen)
	}
}

func TestJitterKeepsCumulativeMonotone(t *testing.T) {
	sys, r := newSys(t, Config{JitterPct: 0.2}, 3)
	var prevInstr, prevMem float64
	for i := 0; i < 40; i++ {
		r.Step(1)
		c := sys.Counters()
		var instr, mem float64
		for _, cc := range c.Cores {
			instr += cc.Instructions
		}
		for _, g := range c.Groups {
			mem += g.MemBytes
			if g.OccupancyBytes < 0 {
				t.Fatalf("read %d: negative occupancy", i)
			}
		}
		if instr < prevInstr || mem < prevMem {
			t.Fatalf("read %d: cumulative counters regressed (%g<%g or %g<%g)",
				i, instr, prevInstr, mem, prevMem)
		}
		prevInstr, prevMem = instr, mem
	}
	if sys.Stats().JitteredReads < 30 {
		t.Errorf("jitter rarely applied: %v", sys.Stats())
	}
}

func TestJitterActuallyPerturbs(t *testing.T) {
	cfg := Config{JitterPct: 0.2}
	sysA, rA := newSys(t, cfg, 5)
	// Compare a jittered meter stream against the unjittered one on an
	// identically-stepped platform.
	sysB := New(resctrl.NewEmu(rA, false), Config{}, 5)
	mA, mB := resctrl.NewMeter(sysA), resctrl.NewMeter(sysB)
	diff := 0.0
	for i := 0; i < 20; i++ {
		rA.Step(1)
		pa, pb := mA.Sample(), mB.Sample()
		diff += math.Abs(pa.TotalGbps - pb.TotalGbps)
	}
	if diff == 0 {
		t.Fatal("20%% jitter left every bandwidth reading untouched")
	}
}

func TestWriteRejection(t *testing.T) {
	sys, _ := newSys(t, Config{WriteFailProb: 0.5}, 11)
	rejected, accepted := 0, 0
	for i := 0; i < 40; i++ {
		err := sys.SetCBM(policy.HPClos, 0xff)
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrInjected):
			rejected++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if rejected == 0 || accepted == 0 {
		t.Fatalf("rejection 0.5 over 40 writes: %d rejected, %d accepted", rejected, accepted)
	}
	if sys.Stats().WritesRejected != rejected || sys.Stats().Writes != 40 {
		t.Errorf("stats %v", sys.Stats())
	}
}

func TestDelayedActuationLandsLate(t *testing.T) {
	sys, r := newSys(t, Config{WriteDelayProb: 1, DelayPeriods: 2}, 1)
	before := sys.CBM(policy.HPClos)
	if err := sys.SetCBM(policy.HPClos, 0xf0000); err != nil {
		t.Fatal(err)
	}
	if got := sys.CBM(policy.HPClos); got != before {
		t.Fatalf("delayed write landed immediately: %#x", got)
	}
	if sys.PendingWrites() != 1 {
		t.Fatalf("pending %d, want 1", sys.PendingWrites())
	}
	r.Step(1)
	sys.Counters() // read 1: not yet due
	if got := sys.CBM(policy.HPClos); got != before {
		t.Fatalf("write landed after 1 read: %#x", got)
	}
	r.Step(1)
	sys.Counters() // read 2: due
	if got := sys.CBM(policy.HPClos); got != 0xf0000 {
		t.Fatalf("write did not land after %d reads: %#x", 2, got)
	}
	if sys.PendingWrites() != 0 {
		t.Fatalf("pending %d after landing", sys.PendingWrites())
	}
}

func TestDrainFlushesPendingWrites(t *testing.T) {
	sys, _ := newSys(t, Config{WriteDelayProb: 1, DelayPeriods: 100}, 2)
	if err := sys.SetCBM(policy.HPClos, 0xf0000); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetCBM(policy.BEClos, 0x0ffff); err != nil {
		t.Fatal(err)
	}
	if n := sys.Drain(); n != 2 {
		t.Fatalf("drained %d, want 2", n)
	}
	if sys.CBM(policy.HPClos) != 0xf0000 || sys.CBM(policy.BEClos) != 0x0ffff {
		t.Fatal("drain did not land the writes")
	}
}

// TestDeterministicReplay is the core guarantee: same schedule + seed +
// workload => bit-identical fault sequence and counter stream.
func TestDeterministicReplay(t *testing.T) {
	for _, cfg := range Schedules() {
		t.Run(cfg.Name, func(t *testing.T) {
			trace := func(seed int64) (Stats, string) {
				sys, r := newSys(t, cfg, seed)
				meter := resctrl.NewMeter(sys)
				fp := ""
				for i := 0; i < 40; i++ {
					r.Step(1)
					p := meter.Sample()
					if err := sys.SetCBM(policy.HPClos, 0x3fc00); err != nil &&
						!errors.Is(err, ErrInjected) {
						t.Fatal(err)
					}
					fp += fmt.Sprintf("%.9g|", p.TotalGbps)
				}
				return sys.Stats(), fp
			}
			s1, f1 := trace(99)
			s2, f2 := trace(99)
			if s1 != s2 || f1 != f2 {
				t.Fatalf("replay diverged:\n%v\n%v", s1, s2)
			}
			s3, f3 := trace(100)
			if f1 == f3 && cfg.DropoutProb+cfg.FreezeProb+cfg.JitterPct > 0 {
				t.Errorf("different seed produced identical monitoring stream (stats %v)", s3)
			}
		})
	}
}

func TestCoreParkingForwarded(t *testing.T) {
	sys, r := newSys(t, Config{}, 1)
	if err := sys.ParkCore(3); err != nil {
		t.Fatal(err)
	}
	if !sys.CoreParked(3) || !r.CoreParked(3) {
		t.Fatal("park not forwarded to inner system")
	}
	if err := sys.UnparkCore(3); err != nil {
		t.Fatal(err)
	}
	if sys.CoreParked(3) {
		t.Fatal("unpark not forwarded")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Reads: 10, Dropouts: 1, Writes: 4, WritesRejected: 2}
	out := s.String()
	for _, want := range []string{"reads=10", "dropout=1", "writes=4", "rejected=2"} {
		if !contains(out, want) {
			t.Errorf("Stats.String() = %q missing %q", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
