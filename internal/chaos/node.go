package chaos

// Node-level fault schedules for the fleet layer. Where Config injects
// faults *inside* one server's monitoring/actuation path, a NodeSchedule
// injects faults *around* whole servers: a node freezes (stops stepping
// and heartbeating for a bounded number of monitoring periods) or is
// lost outright (never comes back; its best-effort jobs must be
// re-placed elsewhere). Schedules are either written out explicitly as
// events or generated from a seed, and either way they are a pure
// function of their inputs — the same schedule replays bit-identically.

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeFault is the kind of a node-level fault event.
type NodeFault string

// Node-level fault kinds.
const (
	// NodeFreeze suspends a node for Periods monitoring periods: it does
	// not step, its jobs make no progress, and it misses heartbeats, so
	// the fleet must treat it as unplaceable until it thaws.
	NodeFreeze NodeFault = "freeze"
	// NodeLoss kills a node permanently. Jobs running on it are
	// orphaned and handed back to the fleet for re-placement.
	NodeLoss NodeFault = "loss"
)

// NodeEvent is one scheduled node-level fault.
type NodeEvent struct {
	// Period is the monitoring period at whose start the event fires.
	Period int `json:"period"`
	// Node is the target node index.
	Node int `json:"node"`
	// Fault is the event kind.
	Fault NodeFault `json:"fault"`
	// Periods is the freeze duration; ignored for NodeLoss.
	Periods int `json:"periods,omitempty"`
}

// NodeSchedule is a named, ordered list of node-level fault events.
type NodeSchedule struct {
	Name   string      `json:"name"`
	Events []NodeEvent `json:"events"`
}

// Validate reports schedule configuration errors.
func (s NodeSchedule) Validate() error {
	for i, e := range s.Events {
		if e.Period < 0 {
			return fmt.Errorf("chaos: node event %d has negative period %d", i, e.Period)
		}
		if e.Node < 0 {
			return fmt.Errorf("chaos: node event %d has negative node %d", i, e.Node)
		}
		switch e.Fault {
		case NodeFreeze:
			if e.Periods <= 0 {
				return fmt.Errorf("chaos: node event %d freeze needs positive duration", i)
			}
		case NodeLoss:
		default:
			return fmt.Errorf("chaos: node event %d has unknown fault %q", i, e.Fault)
		}
	}
	return nil
}

// Active reports whether the schedule fires any event at all.
func (s NodeSchedule) Active() bool { return len(s.Events) > 0 }

// At returns the events firing at the given period, in schedule order.
func (s NodeSchedule) At(period int) []NodeEvent {
	var out []NodeEvent
	for _, e := range s.Events {
		if e.Period == period {
			out = append(out, e)
		}
	}
	return out
}

// GenNodeSchedule draws a node-level fault schedule from a seed:
// per period and node, a freeze fires with freezeProb (for a duration
// uniform in [1, maxFreeze]) and a loss with lossProb. Events are sorted
// by (period, node) so the schedule is canonical. The same arguments
// always produce the same schedule.
func GenNodeSchedule(name string, seed int64, nodes, horizon int, freezeProb, lossProb float64, maxFreeze int) NodeSchedule {
	if maxFreeze < 1 {
		maxFreeze = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := NodeSchedule{Name: name}
	for p := 0; p < horizon; p++ {
		for n := 0; n < nodes; n++ {
			// Draw both variates unconditionally so the stream consumed
			// per (period, node) cell is fixed and the schedule for a
			// prefix of nodes/horizon is a prefix-independent function of
			// the seed only through ordering.
			f := rng.Float64()
			l := rng.Float64()
			d := rng.Intn(maxFreeze) + 1
			if l < lossProb {
				s.Events = append(s.Events, NodeEvent{Period: p, Node: n, Fault: NodeLoss})
			} else if f < freezeProb {
				s.Events = append(s.Events, NodeEvent{Period: p, Node: n, Fault: NodeFreeze, Periods: d})
			}
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].Period != s.Events[j].Period {
			return s.Events[i].Period < s.Events[j].Period
		}
		return s.Events[i].Node < s.Events[j].Node
	})
	return s
}

// NodeSchedules returns the canned node-level schedules the fleet soak
// and the dicer-fleet -node-chaos flag expose. Durations are in
// monitoring periods; probabilities are per node per period, so expected
// event counts scale with cluster size and horizon.
func NodeSchedules(seed int64, nodes, horizon int) []NodeSchedule {
	return []NodeSchedule{
		GenNodeSchedule("node-freeze", seed, nodes, horizon, 0.01, 0, 5),
		GenNodeSchedule("node-loss", seed, nodes, horizon, 0, 0.002, 1),
		GenNodeSchedule("node-storm", seed, nodes, horizon, 0.008, 0.001, 4),
	}
}

// NodeScheduleByName draws the canned schedule with the given name;
// "none" returns an inactive schedule.
func NodeScheduleByName(name string, seed int64, nodes, horizon int) (NodeSchedule, error) {
	if name == "" || name == "none" {
		return NodeSchedule{Name: "none"}, nil
	}
	for _, s := range NodeSchedules(seed, nodes, horizon) {
		if s.Name == name {
			return s, nil
		}
	}
	return NodeSchedule{}, fmt.Errorf("chaos: unknown node schedule %q (have none, node-freeze, node-loss, node-storm)", name)
}
