package chaos

import (
	"reflect"
	"testing"
)

func TestGenNodeScheduleDeterministic(t *testing.T) {
	a := GenNodeSchedule("s", 42, 8, 200, 0.02, 0.005, 4)
	b := GenNodeSchedule("s", 42, 8, 200, 0.02, 0.005, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different node schedules")
	}
	c := GenNodeSchedule("s", 43, 8, 200, 0.02, 0.005, 4)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical node schedules (suspicious)")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated schedule invalid: %v", err)
	}
	if !a.Active() {
		t.Fatal("expected events at these rates over 8x200 cells")
	}
}

func TestNodeScheduleValidate(t *testing.T) {
	bad := []NodeSchedule{
		{Events: []NodeEvent{{Period: -1, Node: 0, Fault: NodeLoss}}},
		{Events: []NodeEvent{{Period: 0, Node: -2, Fault: NodeLoss}}},
		{Events: []NodeEvent{{Period: 0, Node: 0, Fault: NodeFreeze, Periods: 0}}},
		{Events: []NodeEvent{{Period: 0, Node: 0, Fault: "explode"}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %d should fail validation", i)
		}
	}
	ok := NodeSchedule{Events: []NodeEvent{
		{Period: 3, Node: 1, Fault: NodeFreeze, Periods: 2},
		{Period: 9, Node: 0, Fault: NodeLoss},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if got := ok.At(3); len(got) != 1 || got[0].Fault != NodeFreeze {
		t.Fatalf("At(3) = %+v", got)
	}
	if got := ok.At(4); len(got) != 0 {
		t.Fatalf("At(4) = %+v, want empty", got)
	}
}

func TestNodeScheduleByName(t *testing.T) {
	for _, name := range []string{"none", "node-freeze", "node-loss", "node-storm"} {
		s, err := NodeScheduleByName(name, 1, 4, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" && s.Active() {
			t.Fatal("none should be inactive")
		}
	}
	if _, err := NodeScheduleByName("bogus", 1, 4, 100); err == nil {
		t.Fatal("unknown schedule should error")
	}
}
