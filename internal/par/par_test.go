package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestExecuteCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 16, 257} {
			counts := make([]atomic.Int32, n)
			if err := Execute(n, workers, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("n=%d workers=%d: index %d ran %d times", n, workers, i, got)
				}
			}
		}
	}
}

func TestExecuteStealsSkewedShards(t *testing.T) {
	// All the work lives in the first shard's index range; with more
	// workers than busy indices, stealing must still cover everything.
	var ran atomic.Int32
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := Execute(64, 8, func(i int) error {
		ran.Add(1)
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 || len(seen) != 64 {
		t.Fatalf("covered %d indices (%d calls), want 64", len(seen), ran.Load())
	}
}

func TestExecuteReportsLowestIndexError(t *testing.T) {
	fail := map[int]bool{3: true, 11: true, 40: true}
	for _, workers := range []int{1, 4, 16} {
		err := Execute(48, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("index %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 3 failed" {
			t.Fatalf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestExecuteRunsEverythingDespiteErrors(t *testing.T) {
	var ran atomic.Int32
	err := Execute(32, 4, func(i int) error {
		ran.Add(1)
		if i%2 == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d of 32 indices; every index must run even when others fail", ran.Load())
	}
}

func TestExecuteZeroAndNegativeN(t *testing.T) {
	if err := Execute(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := Execute(-3, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteWWorkerKeying pins ExecuteW's per-worker contract: every
// index runs exactly once under a valid worker id, each worker id maps
// to one goroutine (so per-w accumulators need no locking), and integer
// accumulators merged over w reproduce the serial total — the property
// the fleet's per-shard aggregation relies on.
func TestExecuteWWorkerKeying(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 300
		type acc struct {
			sum int64
			_   [56]byte
		}
		accs := make([]acc, workers)
		ran := make([]atomic.Int32, n)
		if err := ExecuteW(n, workers, func(w, i int) error {
			if w < 0 || w >= workers {
				return fmt.Errorf("worker id %d outside [0,%d)", w, workers)
			}
			accs[w].sum += int64(i)
			ran[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		total := int64(0)
		for w := range accs {
			total += accs[w].sum
		}
		if want := int64(n * (n - 1) / 2); total != want {
			t.Fatalf("workers=%d: per-worker sums merge to %d, want %d", workers, total, want)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestExecuteSerialZeroAlloc pins the serial fast path of both entry
// points at zero allocations with a pre-hoisted closure.
func TestExecuteSerialZeroAlloc(t *testing.T) {
	var sink atomic.Int64
	fn := func(i int) error { sink.Add(int64(i)); return nil }
	fnW := func(w, i int) error { sink.Add(int64(w + i)); return nil }
	if got := testing.AllocsPerRun(200, func() {
		if err := Execute(64, 1, fn); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("serial Execute allocates %v/op, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if err := ExecuteW(64, 1, fnW); err != nil {
			t.Error(err)
		}
	}); got != 0 {
		t.Errorf("serial ExecuteW allocates %v/op, want 0", got)
	}
}
