// Package par implements the repo's parallel executor: a sharded
// work-stealing pool over an index space. It is a leaf package — no
// internal dependencies — so every layer can use it: the experiment
// engine fans cells out through it (experiments.Execute is a thin
// wrapper), internal/hypo replicates seeds across it, and the fleet
// layer batches node stepping through it. Parallelism stays bounded in
// exactly one place per caller and output ordering is deterministic by
// construction: workers write results into caller-owned,
// index-addressed slots, so the result of job i lands in slot i no
// matter which worker ran it or when.
//
// The index space [0, n) is split into one contiguous shard per worker.
// Each worker drains its own shard through an atomic cursor, then
// steals from the other shards in ring order. Stealing uses the same
// cursor, so an index is claimed exactly once; a worker leaves a shard
// only when its cursor has passed the end, which guarantees every index
// is claimed even when visits interleave. Contiguous shards keep each
// worker's memo and cache accesses clustered; stealing bounds the tail
// when shard costs are skewed (co-located runs vary ~10× with BECount).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// shard is one worker's slice of the index space. The cursor is padded
// to a cache line so concurrent claims on neighbouring shards do not
// false-share.
type shard struct {
	next atomic.Int64
	end  int64
	_    [48]byte
}

// Execute runs fn(i) for every i in [0, n) across workers goroutines
// (workers <= 0 means GOMAXPROCS). Every index runs exactly once even
// if some fail; the returned error is the one from the lowest failing
// index, so error reporting is as deterministic as the results
// themselves. fn must be safe for concurrent calls with distinct i.
func Execute(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path, duplicated from ExecuteW so the wrapping
		// closure below never exists here: warm serial Execute calls are
		// pinned allocation-free by the experiment engine's tests.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return ExecuteW(n, workers, func(_, i int) error { return fn(i) })
}

// ExecuteW is Execute with the executing worker's index passed to fn:
// fn(w, i) runs index i on worker w, with w in [0, workers'), where
// workers' is the effective worker count after clamping (1 on the
// serial path). Callers that accumulate partial results per worker key
// them by w — each w runs on exactly one goroutine, so a per-w
// accumulator needs no locking, and integer (commutative) merges over w
// are deterministic regardless of which worker stole which index.
func ExecuteW(n, workers int, fn func(w, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial: same run-everything, lowest-index-error contract,
		// with no goroutine or shard setup.
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	shards := make([]shard, workers)
	base, rem := n/workers, n%workers
	start := 0
	for i := range shards {
		size := base
		if i < rem {
			size++
		}
		shards[i].next.Store(int64(start))
		shards[i].end = int64(start + size)
		start += size
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		errIdx   = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// len(shards), not the workers parameter: capturing the
			// (reassigned) parameter would move it to the heap at
			// function entry, costing the serial path an allocation.
			for off := 0; off < len(shards); off++ {
				sh := &shards[(w+off)%len(shards)]
				for {
					i := int(sh.next.Add(1) - 1)
					if int64(i) >= sh.end {
						break
					}
					if err := fn(w, i); err != nil {
						errMu.Lock()
						if i < errIdx {
							errIdx, firstErr = i, err
						}
						errMu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
