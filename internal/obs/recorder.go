package obs

import (
	"errors"
	"math/bits"

	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Recorder assembles one Record per monitoring period and hands it to a
// Sink. It owns a single scratch Record (and the fixed decision buffer
// behind it), so a period costs zero heap allocations regardless of the
// sink — the harnesses wire it unconditionally and pay nothing when the
// sink is NopSink.
//
// Wiring order: NewRecorder, then AttachController / AttachChaos as the
// run's substrate dictates, optionally Start with the trace header, then
// EndPeriod once per monitoring period after the policy observed it.
type Recorder struct {
	sink      Sink
	ctl       *core.Controller
	cs        *chaos.System
	threshold float64 // saturation threshold; 0 disables the verdict

	prevFaults chaos.Stats
	timeSec    float64

	rec Record
	dec [maxDecisions]string
}

// NewRecorder creates a Recorder emitting to sink (NopSink if nil).
func NewRecorder(sink Sink) *Recorder {
	if sink == nil {
		sink = NopSink{}
	}
	return &Recorder{sink: sink}
}

// AttachController subscribes the recorder to a DICER controller's
// decision stream (chained after any existing subscriber) and adopts its
// saturation threshold for the per-period verdict.
func (r *Recorder) AttachController(ctl *core.Controller) {
	if ctl == nil {
		return
	}
	r.ctl = ctl
	r.threshold = ctl.Config().BWThresholdGbps
	if ctl.Config().DisableSaturationHandling {
		r.threshold = 0
	}
	ctl.ChainTrace(r.onEvent)
}

// AttachChaos points the recorder at the run's fault-injection layer so
// records carry the faults injected in their period.
func (r *Recorder) AttachChaos(cs *chaos.System) {
	if cs == nil {
		return
	}
	r.cs = cs
	r.prevFaults = cs.Stats()
}

// Start forwards the trace header to the sink when it wants one.
func (r *Recorder) Start(h Header) error {
	if hs, ok := r.sink.(HeaderSink); ok {
		return hs.Start(h)
	}
	return nil
}

// onEvent folds one controller decision into the period's record. The
// last decision's cause tag becomes the period's provenance (classify
// may override it with guard-veto / chaos-masked).
func (r *Recorder) onEvent(e core.Event) {
	if n := len(r.rec.Decisions); n < maxDecisions {
		r.dec[n] = string(e.Kind)
		r.rec.Decisions = r.dec[:n+1]
	}
	r.rec.Cause = e.Cause
}

// EndPeriod assembles and emits the record for one monitoring period.
// p is the period's counter reading, sys the substrate after the
// policy's actuation, observeErr the raw error returned by the policy's
// Observe (nil when the period was clean; injected-fault and invariant
// errors are classified into the record, anything else lands in Err).
func (r *Recorder) EndPeriod(period int, p resctrl.Period, sys resctrl.System, observeErr error) {
	rec := &r.rec
	rec.Period = period
	r.timeSec += p.Seconds
	rec.TimeSec = r.timeSec

	// Inputs.
	rec.HPIPC = p.ClosMeanIPC(policy.HPClos)
	rec.BEMeanIPC = p.ClosMeanIPC(policy.BEClos)
	rec.HPBWGbps = p.GroupBW(policy.HPClos)
	rec.TotalGbps = p.TotalGbps
	rec.HPOccBytes = 0
	for _, g := range p.Groups {
		if g.Clos == policy.HPClos {
			rec.HPOccBytes = g.OccupancyBytes
			break
		}
	}
	rec.Saturated = r.threshold > 0 && p.TotalGbps > r.threshold

	// Outputs. Decisions were folded in by onEvent during Observe.
	rec.HPMask = sys.CBM(policy.HPClos)
	rec.BEMask = sys.CBM(policy.BEClos)
	if r.ctl != nil {
		rec.State = r.ctl.State()
		rec.HPWays = r.ctl.HPWays()
	} else {
		rec.State = ""
		rec.HPWays = bits.OnesCount64(rec.HPMask)
	}

	// Substrate annotations.
	if r.cs != nil {
		cur := r.cs.Stats()
		rec.Faults = cur.Sub(r.prevFaults)
		r.prevFaults = cur
	} else {
		rec.Faults = chaos.Stats{}
	}
	rec.Tolerated = false
	rec.Guard = ""
	rec.Err = ""
	if observeErr != nil {
		r.classify(observeErr)
	}

	r.sink.Emit(rec)
	rec.Decisions = r.dec[:0]
	rec.Cause = ""
}

// classify sorts an Observe error into the record's annotation fields
// and overrides the decision cause with the substrate-level provenance.
// Kept off the happy path so a clean period stays allocation-free.
func (r *Recorder) classify(err error) {
	if errors.Is(err, chaos.ErrInjected) {
		r.rec.Tolerated = true
		r.rec.Cause = "chaos-masked"
	}
	var ie *invariant.Error
	if errors.As(err, &ie) {
		r.rec.Guard = ie.Error()
		r.rec.Cause = "guard-veto"
	} else if !r.rec.Tolerated {
		r.rec.Err = err.Error()
	}
}
