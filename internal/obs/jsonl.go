package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// LineWriter writes JSON Lines: one value per line, buffered, first
// error sticky. Output is deterministic for deterministic values (struct
// fields marshal in declaration order, floats in Go's shortest exact
// form), which is what makes golden-trace tests byte-for-byte stable.
// Both the per-run trace sink (JSONL) and the fleet's cluster trace are
// built on it.
//
// A LineWriter is not safe for concurrent use; give each run its own.
type LineWriter struct {
	w   *bufio.Writer
	err error // first write error; subsequent calls are no-ops
}

// NewLineWriter wraps w. Call Flush after the run; lines are buffered.
func NewLineWriter(w io.Writer) *LineWriter {
	return &LineWriter{w: bufio.NewWriter(w)}
}

// WriteLine marshals v and appends it as one line.
func (l *LineWriter) WriteLine(v any) {
	if l.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(b); err != nil {
		l.err = err
		return
	}
	l.err = l.w.WriteByte('\n')
}

// Flush drains the buffer and returns the first error encountered by any
// write so far.
func (l *LineWriter) Flush() error {
	if l.err != nil {
		return l.err
	}
	return l.w.Flush()
}

// Err returns the first error encountered so far.
func (l *LineWriter) Err() error { return l.err }

// JSONL writes a trace as JSON Lines: one Header line followed by one
// line per Record.
//
// JSONL is not safe for concurrent Emit calls; give each run its own
// writer (the per-runner pattern the experiments layer uses).
type JSONL struct {
	lw *LineWriter
}

// NewJSONL wraps w. Call Flush (or Close on the owning file) after the
// run; records are buffered.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{lw: NewLineWriter(w)}
}

// Start implements HeaderSink: the header becomes the first line.
func (j *JSONL) Start(h Header) error {
	if h.Schema == "" {
		h.Schema = Schema
	}
	j.lw.WriteLine(h)
	return j.lw.Err()
}

// Emit implements Sink.
func (j *JSONL) Emit(r *Record) { j.lw.WriteLine(r) }

// Flush drains the buffer and returns the first error encountered by any
// write so far.
func (j *JSONL) Flush() error { return j.lw.Flush() }

var _ HeaderSink = (*JSONL)(nil)

// ReadTrace parses a JSONL trace: the header line, then every record.
func ReadTrace(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var h Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, err
		}
		return h, nil, fmt.Errorf("obs: empty trace")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("obs: bad trace header: %w", err)
	}
	if h.Schema != Schema && h.Schema != SchemaV2 {
		return h, nil, fmt.Errorf("obs: unsupported trace schema %q (want %q or %q)", h.Schema, Schema, SchemaV2)
	}

	var recs []Record
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return h, recs, fmt.Errorf("obs: bad record on line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	return h, recs, sc.Err()
}
