package obs

import (
	"fmt"

	"dicer/internal/cache"
	"dicer/internal/core"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// Replay re-drives a fresh DICER controller from a recorded trace and
// verifies decision-for-decision equivalence: for every period, the
// replayed controller — fed exactly the counter readings the trace
// recorded — must reproduce the recorded decision events, state machine
// position and intended HP allocation. For fault-free traces the
// installed masks are verified too (under actuation faults the recorded
// masks lag the controller's intent by construction, so only the
// decisions are compared — they are a pure function of the recorded
// inputs either way).
//
// This is the replay guarantee that turns every captured trace into a
// regression test: the controller's decisions depend only on the
// per-period observables (HP IPC, HP bandwidth, total bandwidth) and its
// own configuration, both of which the trace carries.

// ReplayResult summarises a verified replay.
type ReplayResult struct {
	Periods       int  // records replayed
	Decisions     int  // decision events compared
	MasksVerified bool // installed masks were also compared (fault-free trace)
}

// ReplayError reports the first divergence between trace and replay.
type ReplayError struct {
	Period int
	Field  string // "state" | "hp_ways" | "decisions" | "hp_mask" | "be_mask"
	Got    string // replayed value
	Want   string // recorded value
}

func (e *ReplayError) Error() string {
	return fmt.Sprintf("obs: replay diverged at period %d: %s = %s, trace recorded %s",
		e.Period, e.Field, e.Got, e.Want)
}

// replaySystem is the minimal substrate a replayed controller needs:
// mask storage with CAT legality checks and the way count from the
// header. Counters are never read during replay (inputs come from the
// trace), so Counters returns an empty snapshot.
type replaySystem struct {
	ways  int
	masks [4]uint64
}

func (s *replaySystem) NumWays() int { return s.ways }
func (s *replaySystem) NumClos() int { return len(s.masks) }
func (s *replaySystem) SetCBM(clos int, mask uint64) error {
	if clos < 0 || clos >= len(s.masks) {
		return fmt.Errorf("obs: replay CLOS %d out of range", clos)
	}
	if err := cache.CheckMask(mask, s.ways); err != nil {
		return err
	}
	s.masks[clos] = mask
	return nil
}
func (s *replaySystem) CBM(clos int) uint64 {
	if clos < 0 || clos >= len(s.masks) {
		return 0
	}
	return s.masks[clos]
}
func (s *replaySystem) SetMBACap(int, float64) error { return fmt.Errorf("obs: replay has no MBA") }
func (s *replaySystem) LinkCapacityGbps() float64    { return 0 }
func (s *replaySystem) Counters() resctrl.Counters   { return resctrl.Counters{} }

var _ resctrl.System = (*replaySystem)(nil)

// Replay verifies h and recs as described above. It returns the summary
// and the first divergence as a *ReplayError (or a plain error for
// structural problems: no controller config, bad way count, ...).
func Replay(h Header, recs []Record) (ReplayResult, error) {
	var res ReplayResult
	if h.Controller == nil {
		return res, fmt.Errorf("obs: trace has no controller config (policy %q); only DICER traces replay", h.Policy)
	}
	if h.NumWays < 2 {
		return res, fmt.Errorf("obs: trace header way count %d too small", h.NumWays)
	}
	ctl, err := core.New(*h.Controller)
	if err != nil {
		return res, fmt.Errorf("obs: trace controller config: %w", err)
	}
	sys := &replaySystem{ways: h.NumWays}

	var events []string
	ctl.Trace = func(e core.Event) { events = append(events, string(e.Kind)) }
	if err := ctl.Setup(sys); err != nil {
		return res, fmt.Errorf("obs: replay setup: %w", err)
	}
	res.MasksVerified = h.FaultFree()

	for i := range recs {
		rec := &recs[i]
		events = events[:0]
		p := synthPeriod(rec)
		// The only error Observe can produce here is a failed schemata
		// write, which the legal-by-construction replay system never
		// rejects; treat one as a structural failure.
		if err := ctl.Observe(sys, p); err != nil {
			return res, fmt.Errorf("obs: replay observe period %d: %w", rec.Period, err)
		}
		if err := compare(rec, ctl, sys, events, res.MasksVerified); err != nil {
			return res, err
		}
		res.Periods++
		res.Decisions += len(events)
	}
	return res, nil
}

// synthPeriod rebuilds the observables the controller consumed from one
// record. The controller reads only the HP-class mean IPC, the HP
// group's bandwidth and the total bandwidth, so one core per class and
// one group per class reproduce its view exactly.
func synthPeriod(rec *Record) resctrl.Period {
	return resctrl.Period{
		Seconds: 1,
		Cores: []resctrl.PeriodCore{
			{Core: 0, Clos: policy.HPClos, IPC: rec.HPIPC},
			{Core: 1, Clos: policy.BEClos, IPC: rec.BEMeanIPC},
		},
		Groups: []resctrl.PeriodGroup{
			{Clos: policy.HPClos, BandwidthGbps: rec.HPBWGbps, OccupancyBytes: rec.HPOccBytes},
			{Clos: policy.BEClos, BandwidthGbps: rec.TotalGbps - rec.HPBWGbps},
		},
		TotalGbps: rec.TotalGbps,
	}
}

// compare checks one period's replayed outcome against the record.
func compare(rec *Record, ctl *core.Controller, sys *replaySystem, events []string, masks bool) error {
	if got := ctl.State(); got != rec.State {
		return &ReplayError{rec.Period, "state", got, rec.State}
	}
	if got := ctl.HPWays(); got != rec.HPWays {
		return &ReplayError{rec.Period, "hp_ways",
			fmt.Sprintf("%d", got), fmt.Sprintf("%d", rec.HPWays)}
	}
	if !equalStrings(events, rec.Decisions) {
		return &ReplayError{rec.Period, "decisions",
			fmt.Sprintf("%v", events), fmt.Sprintf("%v", rec.Decisions)}
	}
	if masks {
		if got := sys.CBM(policy.HPClos); got != rec.HPMask {
			return &ReplayError{rec.Period, "hp_mask",
				fmt.Sprintf("%#x", got), fmt.Sprintf("%#x", rec.HPMask)}
		}
		if got := sys.CBM(policy.BEClos); got != rec.BEMask {
			return &ReplayError{rec.Period, "be_mask",
				fmt.Sprintf("%#x", got), fmt.Sprintf("%#x", rec.BEMask)}
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
