// Package obs is the observability layer of the repository: a structured,
// per-monitoring-period audit trail of what the DICER control loop saw and
// what it decided, with pluggable sinks and a deterministic replay.
//
// DICER's whole contract is a control loop over observed counters (IPC,
// occupancy, MBM bandwidth); production controllers of this kind live or
// die by their audit trail. The layer answers the operator's three
// questions:
//
//   - What did the controller see? Every Record carries the period's
//     counter readings (HP/BE IPC, per-group bandwidth, occupancy) and the
//     saturation verdict derived from them.
//   - What did it decide? The controller's decision events (shrink, hold,
//     reset, sample, ...), its state machine position, the intended HP way
//     count and the masks actually installed, plus guard interventions and
//     chaos faults active in the period.
//   - Can I replay it? Replay re-drives a fresh controller from the
//     recorded inputs and verifies decision-for-decision equivalence, so
//     every captured trace doubles as a regression test.
//
// The hot path stays clean: records are assembled in a preallocated
// scratch buffer and sinks receive a pointer, so tracing through the no-op
// sink (or a ring) costs zero allocations per period — the PR 2 hot-path
// guarantees (steady-state Step and controller Observe at 0 allocs/op)
// are preserved with tracing enabled. The allocation guard in
// alloc_test.go pins this down.
package obs

import (
	"dicer/internal/chaos"
	"dicer/internal/core"
)

// Schema identifies the trace file format. It is the first line's
// "schema" field; readers reject files with a different value.
const Schema = "dicer-trace/v1"

// SchemaV2 is the multi-HP trace format: the v1 layout plus per-CLOS-
// group header fields (HPs, SLOs, CLOSBudget, Grouping) and per-period
// group records. Every v2 field is optional in both Header and Record,
// so v1 traces parse unchanged and v1 writers remain byte-identical;
// ReadTrace accepts both versions.
const SchemaV2 = "dicer-trace/v2"

// maxDecisions bounds the controller decision events recorded per period.
// The DICER state machine emits at most two per Observe (e.g. "saturated"
// followed by "sample"); four leaves headroom without heap allocation.
const maxDecisions = 4

// Header is the first line of a JSONL trace: everything needed to
// interpret — and replay — the records that follow.
type Header struct {
	// Schema is always the package-level Schema constant.
	Schema string `json:"schema"`
	// Policy is the co-location policy name (e.g. "DICER", "UM").
	Policy string `json:"policy"`
	// HP and BEs name the workload (catalog profile names).
	HP  string   `json:"hp,omitempty"`
	BEs []string `json:"bes,omitempty"`
	// NumWays is the machine's allocatable LLC way count.
	NumWays int `json:"num_ways"`
	// PeriodSec is the monitoring period length T.
	PeriodSec float64 `json:"period_sec,omitempty"`
	// HorizonPeriods is the configured run length.
	HorizonPeriods int `json:"horizon_periods,omitempty"`
	// Chaos names the fault schedule active during recording ("" or
	// "none" means fault-free); ChaosSeed seeds its fault stream.
	Chaos     string `json:"chaos,omitempty"`
	ChaosSeed int64  `json:"chaos_seed,omitempty"`
	// SLO is the HP's target fraction of alone performance (the
	// slowdown target is its reciprocal); HPAloneIPC the HP's full-LLC
	// alone-run IPC it is measured against. Both are optional — the
	// diagnostic layer (internal/diag) falls back to the trace's peak
	// HP IPC as the reference when they are absent.
	SLO        float64 `json:"slo,omitempty"`
	HPAloneIPC float64 `json:"hp_alone_ipc,omitempty"`
	// LinkGbps is the machine's memory-link capacity, for link
	// utilisation diagnostics.
	LinkGbps float64 `json:"link_gbps,omitempty"`
	// Controller is the DICER configuration, when the traced policy is
	// (or wraps) a DICER controller; nil otherwise. Replay requires it.
	Controller *core.Config `json:"controller,omitempty"`

	// v2 (multi-HP) fields — absent in v1 traces.
	//
	// HPs names the HP applications in app order (HP is then unused);
	// SLOs carries each app's target fraction of alone performance.
	HPs  []string  `json:"hps,omitempty"`
	SLOs []float64 `json:"slos,omitempty"`
	// CLOSBudget is the CLOS-id budget the grouping plan ran under, and
	// Grouping the policy that produced it (clustered/per-app/single).
	CLOSBudget int    `json:"clos_budget,omitempty"`
	Grouping   string `json:"grouping,omitempty"`
}

// FaultFree reports whether the trace was recorded without fault
// injection — the condition under which replay can also verify the
// installed masks, not just the controller decisions.
func (h Header) FaultFree() bool { return h.Chaos == "" || h.Chaos == "none" }

// Record is one monitoring period's audit entry. The first group of
// fields is the controller's *input* (the counters it read and the
// verdicts derived from them); the second is its *output* (state,
// decisions, intended allocation, installed masks); the rest annotates
// the substrate (guard interventions, chaos faults, tolerated errors).
//
// All fields are fixed-size except Decisions, which aliases a
// preallocated buffer inside the Recorder; sinks that retain records
// beyond the Emit call must deep-copy (Ring does).
type Record struct {
	// Period is the monitoring period index (0-based).
	Period int `json:"period"`
	// TimeSec is simulated seconds elapsed since the run began.
	TimeSec float64 `json:"time_sec"`

	// Inputs: the counters the controller read this period.
	HPIPC      float64 `json:"hp_ipc"`
	BEMeanIPC  float64 `json:"be_mean_ipc"`
	HPBWGbps   float64 `json:"hp_bw_gbps"`
	TotalGbps  float64 `json:"total_bw_gbps"`
	HPOccBytes float64 `json:"hp_occ_bytes"`
	// Saturated is the period's saturation verdict: total bandwidth above
	// the controller's MemBW_threshold. Always false for policies without
	// a DICER controller (no threshold to compare against).
	Saturated bool `json:"saturated,omitempty"`

	// Outputs: what the controller decided.
	//
	// State is the controller state after the period ("optimise",
	// "sampling", "validate"; "" for non-DICER policies). Decisions are
	// the decision events emitted during the period, in order. HPWays is
	// the controller's intended HP partition size; HPMask/BEMask are the
	// masks actually installed on the substrate at period end (under
	// actuation faults the two can disagree).
	State     string   `json:"state,omitempty"`
	Decisions []string `json:"decisions,omitempty"`
	// Cause is the period's decision provenance: the final decision's
	// cause tag (core.EventKind.Cause — saturation-detected, sampling,
	// shrink-step, steady, phase-reset, perf-reset, rollback,
	// validated), overridden by "guard-veto" when the invariant guard
	// intervened and "chaos-masked" when an injected fault swallowed
	// the actuation. Empty for policies without a controller.
	Cause  string `json:"cause,omitempty"`
	HPWays int    `json:"hp_ways"`
	HPMask uint64 `json:"hp_mask"`
	BEMask uint64 `json:"be_mask"`

	// Faults counts the chaos faults injected during this period (the
	// delta of the chaos system's cumulative stats). Zero without a
	// chaos layer.
	Faults chaos.Stats `json:"faults"`
	// Tolerated marks a period whose actuation was rejected by an
	// injected fault and tolerated by the harness (retried next period).
	Tolerated bool `json:"tolerated,omitempty"`
	// Guard carries the invariant guard's violation text when the period
	// tripped the runtime guard; empty otherwise.
	Guard string `json:"guard,omitempty"`
	// Err carries any other error the period's observation produced.
	Err string `json:"err,omitempty"`

	// Groups holds per-CLOS-group observations and decisions for multi-
	// HP (v2) traces; empty in v1 traces. Like Decisions it aliases
	// recorder scratch — retaining sinks must deep-copy (clone does).
	Groups []GroupRecord `json:"groups,omitempty"`
	// Reclustered marks a period in which the grouping plan changed and
	// the per-group state machines restarted.
	Reclustered bool `json:"reclustered,omitempty"`
}

// GroupRecord is one CLOS group's slice of a v2 record: the counters the
// group's state machine read and what it decided.
type GroupRecord struct {
	Group     int      `json:"group"`
	IPC       float64  `json:"ipc"`
	BWGbps    float64  `json:"bw_gbps"`
	Ways      int      `json:"ways"`
	Mask      uint64   `json:"mask"`
	State     string   `json:"state,omitempty"`
	Decisions []string `json:"decisions,omitempty"`
	Cause     string   `json:"cause,omitempty"`
}

// clone returns a deep copy whose Decisions no longer alias the
// recorder's scratch buffer.
func (r *Record) clone() Record {
	out := *r
	if len(r.Decisions) > 0 {
		out.Decisions = append([]string(nil), r.Decisions...)
	}
	if len(r.Groups) > 0 {
		out.Groups = append([]GroupRecord(nil), r.Groups...)
		for i := range out.Groups {
			if len(out.Groups[i].Decisions) > 0 {
				out.Groups[i].Decisions = append([]string(nil), out.Groups[i].Decisions...)
			}
		}
	}
	return out
}
