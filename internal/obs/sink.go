package obs

// Sink receives one Record per monitoring period. The record pointer is
// only valid for the duration of the call — the Recorder reuses its
// scratch buffer — so sinks that retain records must copy them.
//
// Emit is called from the monitoring loop's hot path; implementations
// meant for production use should avoid per-call allocation (NopSink and
// Ring are allocation-free).
type Sink interface {
	Emit(r *Record)
}

// HeaderSink is a Sink that wants the trace header before the first
// record (the JSONL writer). Recorder.Start forwards to it.
type HeaderSink interface {
	Sink
	Start(h Header) error
}

// NopSink discards every record at zero cost: tracing wired through a
// NopSink must not change the hot path's allocation behaviour at all
// (the BenchmarkTraceRecord guard enforces 0 allocs/op).
type NopSink struct{}

// Emit implements Sink.
func (NopSink) Emit(*Record) {}

// MultiSink fans one record out to several sinks in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(r *Record) {
	for _, s := range m {
		s.Emit(r)
	}
}

// Start implements HeaderSink: the header is forwarded to every member
// that accepts one; the first error wins but every member is started.
func (m MultiSink) Start(h Header) error {
	var first error
	for _, s := range m {
		if hs, ok := s.(HeaderSink); ok {
			if err := hs.Start(h); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// FuncSink adapts a function to the Sink interface, for tests and quick
// dashboards.
type FuncSink func(r *Record)

// Emit implements Sink.
func (f FuncSink) Emit(r *Record) { f(r) }
