package obs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dicer/internal/cache"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
)

// fakeSystem is an allocation-free resctrl.System for driving the
// controller and recorder without a simulator (the quietSystem pattern
// from internal/core).
type fakeSystem struct {
	ways  int
	masks [4]uint64
}

func (q *fakeSystem) NumWays() int { return q.ways }
func (q *fakeSystem) NumClos() int { return len(q.masks) }
func (q *fakeSystem) SetCBM(clos int, mask uint64) error {
	if err := cache.CheckMask(mask, q.ways); err != nil {
		return err
	}
	q.masks[clos] = mask
	return nil
}
func (q *fakeSystem) CBM(clos int) uint64          { return q.masks[clos] }
func (q *fakeSystem) SetMBACap(int, float64) error { return errors.New("no MBA") }
func (q *fakeSystem) LinkCapacityGbps() float64    { return 68.3 }
func (q *fakeSystem) Counters() resctrl.Counters   { return resctrl.Counters{} }

var _ resctrl.System = (*fakeSystem)(nil)

// period builds the observables the controller reads: one HP core, one BE
// core, one monitoring group per class.
func period(hpIPC, beIPC, hpBW, totalBW float64) resctrl.Period {
	return resctrl.Period{
		Seconds: 1,
		Cores: []resctrl.PeriodCore{
			{Core: 0, Clos: policy.HPClos, IPC: hpIPC},
			{Core: 1, Clos: policy.BEClos, IPC: beIPC},
		},
		Groups: []resctrl.PeriodGroup{
			{Clos: policy.HPClos, BandwidthGbps: hpBW, OccupancyBytes: 1 << 20},
			{Clos: policy.BEClos, BandwidthGbps: totalBW - hpBW},
		},
		TotalGbps: totalBW,
	}
}

func TestRingEvictionAndSnapshot(t *testing.T) {
	g := NewRing(3)
	for i := 0; i < 5; i++ {
		g.Emit(&Record{Period: i})
	}
	if g.Len() != 3 || g.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3 and 5", g.Len(), g.Total())
	}
	snap := g.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d records, want 3", len(snap))
	}
	for i, want := range []int{2, 3, 4} {
		if snap[i].Period != want {
			t.Errorf("snapshot[%d].Period = %d, want %d (oldest-first)", i, snap[i].Period, want)
		}
	}
	last, ok := g.Last()
	if !ok || last.Period != 4 {
		t.Fatalf("Last = %+v, %v; want period 4", last, ok)
	}
}

func TestRingDeepCopiesDecisions(t *testing.T) {
	g := NewRing(4)
	buf := [maxDecisions]string{"shrink"}
	g.Emit(&Record{Period: 0, Decisions: buf[:1]})
	buf[0] = "CLOBBERED" // the recorder reuses its scratch like this
	snap := g.Snapshot()
	if got := snap[0].Decisions[0]; got != "shrink" {
		t.Fatalf("ring aliased the caller's decision buffer: got %q", got)
	}
	// Snapshot copies must also be independent of the ring's own slots.
	snap[0].Decisions[0] = "MUTATED"
	if again, _ := g.Last(); again.Decisions[0] != "shrink" {
		t.Fatalf("snapshot aliased the ring slot: got %q", again.Decisions[0])
	}
}

func TestMultiSinkFanOutAndStart(t *testing.T) {
	var buf bytes.Buffer
	jl := NewJSONL(&buf)
	ring := NewRing(8)
	m := MultiSink{ring, jl}
	if err := m.Start(Header{Schema: Schema, Policy: "UM", NumWays: 20}); err != nil {
		t.Fatal(err)
	}
	m.Emit(&Record{Period: 7})
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	if ring.Total() != 1 {
		t.Fatalf("ring got %d records, want 1", ring.Total())
	}
	if got, _ := ring.Last(); got.Period != 7 {
		t.Fatalf("ring record period = %d, want 7", got.Period)
	}
	h, recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Policy != "UM" || len(recs) != 1 || recs[0].Period != 7 {
		t.Fatalf("JSONL leg diverged: header %+v, records %+v", h, recs)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jl := NewJSONL(&buf)
	cfg := core.DefaultConfig()
	hIn := Header{
		Schema: Schema, Policy: "DICER", HP: "milc1", BEs: []string{"gcc_base1", "gcc_base1"},
		NumWays: 20, PeriodSec: 1, HorizonPeriods: 2,
		Chaos: "storm", ChaosSeed: 7, Controller: &cfg,
	}
	if err := jl.Start(hIn); err != nil {
		t.Fatal(err)
	}
	in := []Record{
		{Period: 0, TimeSec: 1, HPIPC: 1.25, HPBWGbps: 4.5, TotalGbps: 55.5,
			Saturated: true, State: "sampling", Decisions: []string{"saturated", "sample"},
			HPWays: 18, HPMask: 0x3ffff, BEMask: 0xc0000,
			Faults: chaos.Stats{Reads: 1, Dropouts: 1}},
		{Period: 1, TimeSec: 2, HPIPC: 1.3, State: "optimise", HPWays: 2,
			Tolerated: true, Guard: "MaskLegal: boom", Err: "other"},
	}
	for i := range in {
		jl.Emit(&in[i])
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}

	hOut, out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hOut.Policy != hIn.Policy || hOut.Chaos != hIn.Chaos || hOut.ChaosSeed != hIn.ChaosSeed ||
		hOut.NumWays != hIn.NumWays || len(hOut.BEs) != 2 {
		t.Fatalf("header round-trip diverged: %+v vs %+v", hOut, hIn)
	}
	if hOut.Controller == nil || *hOut.Controller != cfg {
		t.Fatalf("controller config round-trip diverged: %+v", hOut.Controller)
	}
	if hOut.FaultFree() {
		t.Fatal("chaos trace reported fault-free")
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.Period != want.Period || got.HPIPC != want.HPIPC ||
			got.Saturated != want.Saturated || got.State != want.State ||
			got.HPWays != want.HPWays || got.HPMask != want.HPMask ||
			got.BEMask != want.BEMask || got.Faults != want.Faults ||
			got.Tolerated != want.Tolerated || got.Guard != want.Guard ||
			got.Err != want.Err {
			t.Errorf("record %d round-trip diverged:\n got %+v\nwant %+v", i, got, want)
		}
		if fmt.Sprint(got.Decisions) != fmt.Sprint(want.Decisions) {
			t.Errorf("record %d decisions diverged: %v vs %v", i, got.Decisions, want.Decisions)
		}
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader(`{"schema":"bogus/v9"}` + "\n")); err == nil {
		t.Error("wrong schema accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
}

// TestRecorderCapturesPeriods drives a real controller through quiet,
// saturated, and phase-change periods, and checks every record against an
// independently chained trace subscriber and the controller's own state.
func TestRecorderCapturesPeriods(t *testing.T) {
	ctl := core.MustNew(core.DefaultConfig())
	sys := &fakeSystem{ways: 20}
	ring := NewRing(128)
	rec := NewRecorder(ring)

	// Independent witness for the decision stream; AttachController must
	// chain after it, not replace it.
	var witness []string
	ctl.Trace = func(e core.Event) { witness = append(witness, string(e.Kind)) }
	rec.AttachController(ctl)

	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	ipcs := []float64{1.0, 1.0, 1.0, 1.0, 0.6, 1.4, 0.6, 1.4, 1.0, 1.0}
	bws := []float64{20, 20, 60, 60, 20, 20, 20, 20, 60, 20}
	for i := range ipcs {
		witness = witness[:0]
		p := period(ipcs[i], 0.8, 5, bws[i])
		if err := ctl.Observe(sys, p); err != nil {
			t.Fatal(err)
		}
		rec.EndPeriod(i, p, sys, nil)

		r, ok := ring.Last()
		if !ok {
			t.Fatalf("period %d: no record emitted", i)
		}
		if r.Period != i || r.TimeSec != float64(i+1) {
			t.Fatalf("period %d: bookkeeping %d/%v", i, r.Period, r.TimeSec)
		}
		if r.HPIPC != ipcs[i] || r.TotalGbps != bws[i] || r.HPBWGbps != 5 ||
			r.BEMeanIPC != 0.8 || r.HPOccBytes != 1<<20 {
			t.Fatalf("period %d: inputs diverged: %+v", i, r)
		}
		if want := bws[i] > 50; r.Saturated != want {
			t.Fatalf("period %d: saturated = %v, want %v (bw %v)", i, r.Saturated, want, bws[i])
		}
		if r.State != ctl.State() || r.HPWays != ctl.HPWays() {
			t.Fatalf("period %d: state/ways diverged from controller", i)
		}
		if r.HPMask != sys.CBM(policy.HPClos) || r.BEMask != sys.CBM(policy.BEClos) {
			t.Fatalf("period %d: masks diverged from substrate", i)
		}
		if fmt.Sprint(r.Decisions) != fmt.Sprint(witness) {
			t.Fatalf("period %d: decisions %v, witness saw %v", i, r.Decisions, witness)
		}
		if r.Tolerated || r.Guard != "" || r.Err != "" || r.Faults != (chaos.Stats{}) {
			t.Fatalf("period %d: clean run carried annotations: %+v", i, r)
		}
	}
	if ring.Total() != len(ipcs) {
		t.Fatalf("emitted %d records, want %d", ring.Total(), len(ipcs))
	}
}

func TestRecorderClassifiesErrors(t *testing.T) {
	ring := NewRing(8)
	rec := NewRecorder(ring)
	sys := &fakeSystem{ways: 20}
	p := period(1, 1, 5, 20)

	rec.EndPeriod(0, p, sys, fmt.Errorf("write: %w", chaos.ErrInjected))
	r, _ := ring.Last()
	if !r.Tolerated || r.Guard != "" || r.Err != "" {
		t.Fatalf("injected fault misclassified: %+v", r)
	}

	ie := &invariant.Error{Period: 1, Violations: []invariant.Violation{{Name: "MaskLegal", Detail: "empty"}}}
	rec.EndPeriod(1, p, sys, ie)
	r, _ = ring.Last()
	if r.Guard == "" || r.Tolerated || r.Err != "" {
		t.Fatalf("invariant violation misclassified: %+v", r)
	}

	// A joined injected-fault + guard error (the soak harness's shape)
	// annotates both.
	rec.EndPeriod(2, p, sys, errors.Join(fmt.Errorf("w: %w", chaos.ErrInjected), ie))
	r, _ = ring.Last()
	if !r.Tolerated || r.Guard == "" {
		t.Fatalf("joined error misclassified: %+v", r)
	}

	rec.EndPeriod(3, p, sys, errors.New("boom"))
	r, _ = ring.Last()
	if r.Err != "boom" || r.Tolerated || r.Guard != "" {
		t.Fatalf("plain error misclassified: %+v", r)
	}

	// The scratch annotations must reset for the next clean period.
	rec.EndPeriod(4, p, sys, nil)
	r, _ = ring.Last()
	if r.Err != "" || r.Tolerated || r.Guard != "" {
		t.Fatalf("annotations leaked into a clean period: %+v", r)
	}
}

// TestRecorderNonDICER: without a controller, State stays empty and
// HPWays is derived from the installed mask.
func TestRecorderNonDICER(t *testing.T) {
	ring := NewRing(4)
	rec := NewRecorder(ring)
	sys := &fakeSystem{ways: 20}
	if err := sys.SetCBM(policy.HPClos, 0xff); err != nil {
		t.Fatal(err)
	}
	rec.EndPeriod(0, period(1, 1, 5, 60), sys, nil)
	r, _ := ring.Last()
	if r.State != "" || len(r.Decisions) != 0 {
		t.Fatalf("non-DICER record has controller fields: %+v", r)
	}
	if r.HPWays != 8 {
		t.Fatalf("HPWays = %d, want 8 (popcount of installed mask)", r.HPWays)
	}
	if r.Saturated {
		t.Fatal("saturation verdict without a controller threshold")
	}
}

// TestRecorderChaosDeltas: per-record fault counts are deltas whose sum
// equals the chaos layer's cumulative stats.
func TestRecorderChaosDeltas(t *testing.T) {
	sched, err := chaos.ScheduleByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	cs := chaos.New(&fakeSystem{ways: 20}, sched, 1)
	ring := NewRing(64)
	rec := NewRecorder(ring)
	rec.AttachChaos(cs)

	meter := resctrl.NewMeter(cs)
	for i := 0; i < 20; i++ {
		p := meter.Sample()
		rec.EndPeriod(i, p, cs, nil)
	}
	var sum chaos.Stats
	for _, r := range ring.Snapshot() {
		sum = sum.Add(r.Faults)
	}
	if sum != cs.Stats() {
		t.Fatalf("fault deltas sum to %+v, cumulative stats are %+v", sum, cs.Stats())
	}
	if !sum.Injected() {
		t.Fatal("storm schedule injected nothing in 20 periods; deltas untested")
	}
}

// traceRun records a fault-free DICER run through a JSONL sink and
// returns the parsed trace.
func traceRun(t *testing.T, periods int) (Header, []Record) {
	t.Helper()
	ctl := core.MustNew(core.DefaultConfig())
	sys := &fakeSystem{ways: 20}
	var buf bytes.Buffer
	jl := NewJSONL(&buf)
	rec := NewRecorder(jl)
	rec.AttachController(ctl)
	cfg := ctl.Config()
	if err := rec.Start(Header{
		Schema: Schema, Policy: ctl.Name(), HP: "synthetic", BEs: []string{"synthetic"},
		NumWays: 20, PeriodSec: 1, HorizonPeriods: periods, Controller: &cfg,
	}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < periods; i++ {
		// A mix of steady, saturated, and phase-change periods so the
		// replay exercises every decision kind.
		ipc, bw := 1.0, 20.0
		switch {
		case i%7 == 3:
			ipc = 0.6
		case i%7 == 5:
			ipc = 1.5
		case i%5 == 2:
			bw = 60
		}
		p := period(ipc, 0.8, 5, bw)
		err := ctl.Observe(sys, p)
		rec.EndPeriod(i, p, sys, err)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	h, recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return h, recs
}

func TestReplayRoundTrip(t *testing.T) {
	h, recs := traceRun(t, 60)
	res, err := Replay(h, recs)
	if err != nil {
		t.Fatalf("replay of a freshly recorded trace diverged: %v", err)
	}
	if res.Periods != 60 {
		t.Fatalf("replayed %d periods, want 60", res.Periods)
	}
	if !res.MasksVerified {
		t.Fatal("fault-free trace did not verify masks")
	}
	if res.Decisions == 0 {
		t.Fatal("trace carried no decisions; replay proved nothing")
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	h, recs := traceRun(t, 40)
	tamper := func(mutate func(r *Record)) error {
		cp := make([]Record, len(recs))
		copy(cp, recs)
		for i := range cp {
			cp[i] = *(&recs[i])
			cp[i].Decisions = append([]string(nil), recs[i].Decisions...)
		}
		mutate(&cp[20])
		_, err := Replay(h, cp)
		return err
	}
	cases := []struct {
		field  string
		mutate func(r *Record)
	}{
		{"hp_ways", func(r *Record) { r.HPWays++ }},
		{"state", func(r *Record) { r.State = "sampling" }},
		{"decisions", func(r *Record) { r.Decisions = append(r.Decisions, "shrink") }},
		{"hp_mask", func(r *Record) { r.HPMask ^= 1 << 19 }},
	}
	for _, tc := range cases {
		err := tamper(tc.mutate)
		var re *ReplayError
		if !errors.As(err, &re) {
			t.Errorf("tampered %s: replay returned %v, want *ReplayError", tc.field, err)
			continue
		}
		// Tampering one field can legitimately surface on a neighbouring
		// one first (state and decisions are coupled); requiring *a*
		// divergence at or after the tampered period is the contract.
		if re.Period < 20 {
			t.Errorf("tampered %s at period 20, divergence reported at %d", tc.field, re.Period)
		}
	}
}

func TestReplayRequiresControllerConfig(t *testing.T) {
	h, recs := traceRun(t, 5)
	h.Controller = nil
	if _, err := Replay(h, recs); err == nil {
		t.Fatal("replay without controller config accepted")
	}
	h2, _ := traceRun(t, 5)
	h2.NumWays = 1
	if _, err := Replay(h2, recs); err == nil {
		t.Fatal("replay with 1 way accepted")
	}
}

// TestReplaySkipsMaskCheckUnderChaos: a trace header naming a fault
// schedule must replay decisions but not masks.
func TestReplayMasksSkippedForChaosTrace(t *testing.T) {
	h, recs := traceRun(t, 30)
	h.Chaos = "storm"
	h.ChaosSeed = 7
	res, err := Replay(h, recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.MasksVerified {
		t.Fatal("chaos trace verified masks")
	}
}
