package obs

import "sync"

// Ring is a fixed-capacity, thread-safe ring buffer of Records: the
// in-memory sink behind the /trace endpoint and the property tests. Once
// constructed it never allocates on Emit — each slot owns a fixed
// decision buffer that incoming records are deep-copied into — so it can
// sit on the monitoring hot path for the lifetime of a deployment.
type Ring struct {
	mu    sync.Mutex
	slots []ringSlot
	pos   int // next write position
	n     int // valid slots (<= len(slots))
	total int // records ever emitted
}

// ringSlot stores one record plus the backing array its Decisions slice
// points into, so retention never aliases the Recorder's scratch.
type ringSlot struct {
	rec Record
	dec [maxDecisions]string
}

// NewRing creates a ring holding the most recent capacity records.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]ringSlot, capacity)}
}

// Emit implements Sink.
func (g *Ring) Emit(r *Record) {
	g.mu.Lock()
	s := &g.slots[g.pos]
	s.rec = *r
	nd := copy(s.dec[:], r.Decisions)
	s.rec.Decisions = s.dec[:nd]
	g.pos = (g.pos + 1) % len(g.slots)
	if g.n < len(g.slots) {
		g.n++
	}
	g.total++
	g.mu.Unlock()
}

// Len returns the number of records currently held.
func (g *Ring) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Total returns the number of records ever emitted (held or evicted).
func (g *Ring) Total() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Snapshot returns the held records oldest-first as independent deep
// copies, safe to serialise while the ring keeps filling.
func (g *Ring) Snapshot() []Record {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Record, 0, g.n)
	start := g.pos - g.n
	if start < 0 {
		start += len(g.slots)
	}
	for i := 0; i < g.n; i++ {
		slot := &g.slots[(start+i)%len(g.slots)]
		out = append(out, slot.rec.clone())
	}
	return out
}

// Last returns the most recent record (deep copy) and whether one exists.
func (g *Ring) Last() (Record, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.n == 0 {
		return Record{}, false
	}
	i := g.pos - 1
	if i < 0 {
		i += len(g.slots)
	}
	return g.slots[i].rec.clone(), true
}

var _ Sink = (*Ring)(nil)
