package obs

import (
	"testing"

	"dicer/internal/core"
)

// TestRecorderAllocFree pins the observability layer's hot-path
// guarantee: assembling and emitting a record costs zero heap
// allocations through the no-op sink and through a ring — the two sinks
// meant to stay attached for the lifetime of a deployment. A regression
// here means a slice, closure, or interface boxing crept into EndPeriod
// (or a sink started copying lazily).
func TestRecorderAllocFree(t *testing.T) {
	cases := []struct {
		name string
		sink Sink
	}{
		{"nop", NopSink{}},
		{"ring", NewRing(64)},
		{"multi-nop-ring", MultiSink{NopSink{}, NewRing(64)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctl := core.MustNew(core.DefaultConfig())
			sys := &fakeSystem{ways: 20}
			rec := NewRecorder(tc.sink)
			rec.AttachController(ctl)
			if err := ctl.Setup(sys); err != nil {
				t.Fatal(err)
			}
			steady := period(1.0, 0.8, 5, 20)
			for i := 0; i < 30; i++ {
				if err := ctl.Observe(sys, steady); err != nil {
					t.Fatal(err)
				}
				rec.EndPeriod(i, steady, sys, nil)
			}
			n := 30
			if got := testing.AllocsPerRun(200, func() {
				if err := ctl.Observe(sys, steady); err != nil {
					t.Fatal(err)
				}
				rec.EndPeriod(n, steady, sys, nil)
				n++
			}); got != 0 {
				t.Errorf("steady traced period: %v allocs, want 0", got)
			}

			// The decision-emitting path (oscillating IPC forces resets
			// and validates, each folding events into the record) must be
			// allocation-free too — the fixed decision buffer exists for
			// exactly this.
			flip := false
			if got := testing.AllocsPerRun(200, func() {
				flip = !flip
				p := period(0.6, 0.8, 5, 20)
				if flip {
					p = period(1.4, 0.8, 5, 20)
				}
				if err := ctl.Observe(sys, p); err != nil {
					t.Fatal(err)
				}
				rec.EndPeriod(n, p, sys, nil)
				n++
			}); got != 0 {
				t.Errorf("decision-emitting traced period: %v allocs, want 0", got)
			}
		})
	}
}

// BenchmarkTraceRecord measures one traced monitoring period: controller
// Observe plus record assembly and emission. CI's bench-smoke runs it
// with -benchmem as the allocation guard (0 allocs/op).
func BenchmarkTraceRecord(b *testing.B) {
	for _, tc := range []struct {
		name string
		sink Sink
	}{
		{"nop", NopSink{}},
		{"ring", NewRing(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ctl := core.MustNew(core.DefaultConfig())
			sys := &fakeSystem{ways: 20}
			rec := NewRecorder(tc.sink)
			rec.AttachController(ctl)
			if err := ctl.Setup(sys); err != nil {
				b.Fatal(err)
			}
			steady := period(1.0, 0.8, 5, 20)
			for i := 0; i < 30; i++ {
				if err := ctl.Observe(sys, steady); err != nil {
					b.Fatal(err)
				}
				rec.EndPeriod(i, steady, sys, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctl.Observe(sys, steady); err != nil {
					b.Fatal(err)
				}
				rec.EndPeriod(i, steady, sys, nil)
			}
		})
	}
}
