package obs

import (
	"bytes"
	"fmt"
	"testing"

	"dicer/internal/core"
)

// TestFlightRingWraparound exercises the generic ring through several
// full wraps: ordering stays oldest-first, eviction keeps exactly the
// last capacity values, and Total counts evictions too.
func TestFlightRingWraparound(t *testing.T) {
	r := NewFlightRing[int](5)
	if r.Cap() != 5 || r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d total=%d", r.Cap(), r.Len(), r.Total())
	}
	for i := 0; i < 3; i++ {
		r.Push(i)
	}
	if got := r.Snapshot(nil); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("partial ring snapshot = %v", got)
	}
	for i := 3; i < 23; i++ {
		r.Push(i)
	}
	if r.Len() != 5 || r.Total() != 23 {
		t.Fatalf("wrapped ring: len=%d total=%d", r.Len(), r.Total())
	}
	got := r.Snapshot(nil)
	for i, v := range got {
		if want := 18 + i; v != want {
			t.Fatalf("snapshot[%d] = %d, want %d (full: %v)", i, v, want, got)
		}
	}
	// Snapshot appends to the caller's slice without clobbering it.
	pre := []int{-1}
	if got := r.Snapshot(pre); len(got) != 6 || got[0] != -1 || got[1] != 18 {
		t.Fatalf("appending snapshot = %v", got)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.Snapshot(nil)) != 0 {
		t.Fatalf("reset ring not empty: len=%d total=%d", r.Len(), r.Total())
	}
}

// TestFlightRingPushAllocFree pins the generic ring's hot-path cost:
// pushing a struct with string fields is a slot copy, 0 allocs/op.
func TestFlightRingPushAllocFree(t *testing.T) {
	type entry struct {
		Period int
		Cause  string
		IPC    float64
	}
	r := NewFlightRing[entry](64)
	e := entry{Cause: "shrink-step", IPC: 1.25}
	if got := testing.AllocsPerRun(200, func() {
		e.Period++
		r.Push(e)
	}); got != 0 {
		t.Errorf("FlightRing.Push: %v allocs, want 0", got)
	}
}

// TestFlightWraparound drives the Record-typed flight recorder past its
// capacity and checks the retained window is exactly the last W periods,
// oldest-first, with decisions surviving slot reuse.
func TestFlightWraparound(t *testing.T) {
	f := NewFlight(4)
	rec := Record{Decisions: make([]string, 0, 2)}
	for i := 0; i < 10; i++ {
		rec.Period = i
		rec.Decisions = append(rec.Decisions[:0], fmt.Sprintf("decision-%d", i))
		f.Emit(&rec)
	}
	if f.Len() != 4 || f.Total() != 10 {
		t.Fatalf("len=%d total=%d, want 4, 10", f.Len(), f.Total())
	}
	snap := f.Snapshot()
	for i, r := range snap {
		want := 6 + i
		if r.Period != want {
			t.Fatalf("snapshot[%d].Period = %d, want %d", i, r.Period, want)
		}
		if len(r.Decisions) != 1 || r.Decisions[0] != fmt.Sprintf("decision-%d", want) {
			t.Fatalf("snapshot[%d].Decisions = %v (scratch aliased?)", i, r.Decisions)
		}
	}
}

// TestFlightGroupsSurviveReuse checks the v2 path: per-group decisions
// are deep-copied into slot-owned buffers, so a snapshot taken after the
// emitter's scratch has been rewritten still shows each period's own
// group decisions.
func TestFlightGroupsSurviveReuse(t *testing.T) {
	f := NewFlight(3)
	groups := make([]GroupRecord, 2)
	gdec := [2][]string{make([]string, 0, 2), make([]string, 0, 2)}
	rec := Record{}
	for i := 0; i < 6; i++ {
		for g := range groups {
			groups[g] = GroupRecord{
				Group:     g,
				Ways:      10 + i,
				Decisions: append(gdec[g][:0], fmt.Sprintf("p%d-g%d", i, g)),
			}
		}
		rec.Period = i
		rec.Groups = groups
		f.Emit(&rec)
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len(snapshot) = %d, want 3", len(snap))
	}
	for i, r := range snap {
		p := 3 + i
		if len(r.Groups) != 2 {
			t.Fatalf("snapshot[%d]: %d groups, want 2", i, len(r.Groups))
		}
		for g, gr := range r.Groups {
			if gr.Ways != 10+p {
				t.Fatalf("snapshot[%d].Groups[%d].Ways = %d, want %d", i, g, gr.Ways, 10+p)
			}
			if want := fmt.Sprintf("p%d-g%d", p, g); len(gr.Decisions) != 1 || gr.Decisions[0] != want {
				t.Fatalf("snapshot[%d].Groups[%d].Decisions = %v, want [%s]", i, g, gr.Decisions, want)
			}
		}
	}
}

// TestFlightSnapshotByteDeterminism serialises two snapshots of
// identically driven flight recorders and requires byte equality — the
// property the incident bundle's byte-stability rests on.
func TestFlightSnapshotByteDeterminism(t *testing.T) {
	drive := func() []byte {
		ctl := core.MustNew(core.DefaultConfig())
		sys := &fakeSystem{ways: 20}
		f := NewFlight(16)
		rec := NewRecorder(f)
		rec.AttachController(ctl)
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			p := period(1.0, 0.8, 5, 20)
			if i%7 == 3 {
				p = period(0.6, 0.8, 5, 32) // saturate: force decisions
			}
			if err := ctl.Observe(sys, p); err != nil {
				t.Fatal(err)
			}
			rec.EndPeriod(i, p, sys, nil)
		}
		var buf bytes.Buffer
		lw := NewLineWriter(&buf)
		for _, r := range f.Snapshot() {
			r := r
			lw.WriteLine(&r)
		}
		if err := lw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := drive(), drive()
	if !bytes.Equal(a, b) {
		t.Fatalf("flight snapshots differ between identical runs:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty snapshot serialisation")
	}
}

// TestFlightRecorderAllocFree is the acceptance guard for the flight
// recorder: a warm Flight sink records steady and decision-emitting
// periods at 0 allocs/op, v1 and v2 alike.
func TestFlightRecorderAllocFree(t *testing.T) {
	t.Run("v1", func(t *testing.T) {
		ctl := core.MustNew(core.DefaultConfig())
		sys := &fakeSystem{ways: 20}
		f := NewFlight(64)
		rec := NewRecorder(f)
		rec.AttachController(ctl)
		if err := ctl.Setup(sys); err != nil {
			t.Fatal(err)
		}
		steady := period(1.0, 0.8, 5, 20)
		for i := 0; i < 30; i++ {
			if err := ctl.Observe(sys, steady); err != nil {
				t.Fatal(err)
			}
			rec.EndPeriod(i, steady, sys, nil)
		}
		n := 30
		if got := testing.AllocsPerRun(200, func() {
			if err := ctl.Observe(sys, steady); err != nil {
				t.Fatal(err)
			}
			rec.EndPeriod(n, steady, sys, nil)
			n++
		}); got != 0 {
			t.Errorf("steady flight period: %v allocs, want 0", got)
		}
		flip := false
		if got := testing.AllocsPerRun(200, func() {
			flip = !flip
			p := period(0.6, 0.8, 5, 20)
			if flip {
				p = period(1.4, 0.8, 5, 20)
			}
			if err := ctl.Observe(sys, p); err != nil {
				t.Fatal(err)
			}
			rec.EndPeriod(n, p, sys, nil)
			n++
		}); got != 0 {
			t.Errorf("decision-emitting flight period: %v allocs, want 0", got)
		}
	})

	t.Run("v2-groups", func(t *testing.T) {
		f := NewFlight(64)
		groups := make([]GroupRecord, 3)
		gdec := make([][]string, 3)
		for g := range gdec {
			gdec[g] = make([]string, 0, 2)
		}
		rec := Record{}
		emit := func(p int) {
			for g := range groups {
				groups[g] = GroupRecord{Group: g, Ways: 4 + g, Cause: "steady",
					Decisions: append(gdec[g][:0], "hold")}
			}
			rec.Period = p
			rec.Groups = groups
			f.Emit(&rec)
		}
		for i := 0; i < 70; i++ { // past capacity: every slot's buffers warm
			emit(i)
		}
		n := 70
		if got := testing.AllocsPerRun(200, func() {
			emit(n)
			n++
		}); got != 0 {
			t.Errorf("warm v2 flight emit: %v allocs, want 0", got)
		}
	})
}

// BenchmarkFlightRecord measures the flight recorder against the NopSink
// baseline: the ring record must cost at most a few nanoseconds over
// discarding the record outright, at 0 allocs/op. CI's bench-smoke runs
// it with -benchmem.
func BenchmarkFlightRecord(b *testing.B) {
	for _, tc := range []struct {
		name string
		sink Sink
	}{
		{"nop", NopSink{}},
		{"flight", NewFlight(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ctl := core.MustNew(core.DefaultConfig())
			sys := &fakeSystem{ways: 20}
			rec := NewRecorder(tc.sink)
			rec.AttachController(ctl)
			if err := ctl.Setup(sys); err != nil {
				b.Fatal(err)
			}
			steady := period(1.0, 0.8, 5, 20)
			for i := 0; i < 30; i++ {
				if err := ctl.Observe(sys, steady); err != nil {
					b.Fatal(err)
				}
				rec.EndPeriod(i, steady, sys, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctl.Observe(sys, steady); err != nil {
					b.Fatal(err)
				}
				rec.EndPeriod(i, steady, sys, nil)
			}
		})
	}
	// The ring push itself, isolated from Observe+assembly: this is the
	// per-entry cost the fleet pays per node per period with the recorder
	// armed.
	b.Run("push-only", func(b *testing.B) {
		r := NewFlightRing[Record](64)
		rec := Record{Period: 1, HPIPC: 1.2, Cause: "steady", State: "optimise"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Period = i
			r.Push(rec)
		}
	})
}
