package obs

import (
	"errors"
	"math/bits"

	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/resctrl"
)

// MultiRecorder assembles one v2 Record per monitoring period for a
// multi-HP run: the v1 aggregate fields (HP totals span every HP group)
// plus one GroupRecord per CLOS group. Like Recorder it owns all its
// scratch — group records and their decision buffers are preallocated
// for the controller's CLOS budget — so a period costs zero heap
// allocations regardless of the sink.
type MultiRecorder struct {
	sink      Sink
	mc        *core.MultiController
	cs        *chaos.System
	threshold float64

	prevFaults chaos.Stats
	timeSec    float64

	rec    Record
	groups []GroupRecord // scratch, one slot per possible HP group
	dec    [][]string    // per-group decision buffers (fixed capacity)
}

// NewMultiRecorder creates a recorder emitting to sink (NopSink if nil)
// and subscribes it to the controller's decision stream.
func NewMultiRecorder(sink Sink, mc *core.MultiController) *MultiRecorder {
	if sink == nil {
		sink = NopSink{}
	}
	r := &MultiRecorder{sink: sink, mc: mc}
	r.threshold = mc.Config().Group.BWThresholdGbps
	if mc.Config().Group.DisableSaturationHandling {
		r.threshold = 0
	}
	maxGroups := mc.Config().CLOSBudget - 1
	r.groups = make([]GroupRecord, maxGroups)
	r.dec = make([][]string, maxGroups)
	for i := range r.dec {
		r.dec[i] = make([]string, 0, maxDecisions)
	}
	mc.ChainTrace(r.onEvent)
	return r
}

// AttachChaos points the recorder at the run's fault-injection layer.
func (r *MultiRecorder) AttachChaos(cs *chaos.System) {
	if cs == nil {
		return
	}
	r.cs = cs
	r.prevFaults = cs.Stats()
}

// Start forwards the trace header to the sink when it wants one.
func (r *MultiRecorder) Start(h Header) error {
	if hs, ok := r.sink.(HeaderSink); ok {
		return hs.Start(h)
	}
	return nil
}

// onEvent folds one group decision into the period's scratch.
func (r *MultiRecorder) onEvent(e core.GroupEvent) {
	if e.Group < 0 || e.Group >= len(r.groups) {
		return
	}
	if e.Kind == core.EventRecluster {
		r.rec.Reclustered = true
	}
	g := &r.groups[e.Group]
	if len(g.Decisions) < maxDecisions {
		r.dec[e.Group] = append(r.dec[e.Group], string(e.Kind))
		g.Decisions = r.dec[e.Group]
	}
	g.Cause = e.Cause
}

// EndPeriod assembles and emits the record for one monitoring period.
func (r *MultiRecorder) EndPeriod(period int, p resctrl.Period, sys resctrl.System, observeErr error) {
	rec := &r.rec
	rec.Period = period
	r.timeSec += p.Seconds
	rec.TimeSec = r.timeSec

	k := r.mc.NumGroups()
	beClos := r.mc.BEClos()

	// Aggregate inputs: HP totals span every HP group.
	var hpSum float64
	hpN := 0
	for _, c := range p.Cores {
		if c.Clos < k {
			hpSum += c.IPC
			hpN++
		}
	}
	rec.HPIPC = 0
	if hpN > 0 {
		rec.HPIPC = hpSum / float64(hpN)
	}
	rec.BEMeanIPC = p.ClosMeanIPC(beClos)
	rec.HPBWGbps = 0
	rec.HPOccBytes = 0
	var hpMask uint64
	for gi := 0; gi < k; gi++ {
		rec.HPBWGbps += p.GroupBW(gi)
		hpMask |= sys.CBM(gi)
	}
	for _, g := range p.Groups {
		if g.Clos < k {
			rec.HPOccBytes += g.OccupancyBytes
		}
	}
	rec.TotalGbps = p.TotalGbps
	rec.Saturated = r.threshold > 0 && p.TotalGbps > r.threshold

	// Aggregate outputs: the period's Cause is the last group decision's
	// (folded in by onEvent); State has no single-machine meaning here.
	rec.State = ""
	rec.HPMask = hpMask
	rec.BEMask = sys.CBM(beClos)
	rec.HPWays = bits.OnesCount64(hpMask)

	// Per-group records.
	rec.Groups = r.groups[:k]
	for gi := 0; gi < k; gi++ {
		g := &r.groups[gi]
		g.Group = gi
		g.IPC = p.ClosMeanIPC(gi)
		g.BWGbps = p.GroupBW(gi)
		g.Ways = r.mc.GroupWays(gi)
		g.Mask = sys.CBM(gi)
		g.State = r.mc.GroupState(gi)
	}

	// Substrate annotations.
	if r.cs != nil {
		cur := r.cs.Stats()
		rec.Faults = cur.Sub(r.prevFaults)
		r.prevFaults = cur
	} else {
		rec.Faults = chaos.Stats{}
	}
	rec.Tolerated = false
	rec.Guard = ""
	rec.Err = ""
	if observeErr != nil {
		r.classify(observeErr)
	}

	r.sink.Emit(rec)
	for gi := range r.groups {
		r.dec[gi] = r.dec[gi][:0]
		r.groups[gi].Decisions = nil
		r.groups[gi].Cause = ""
	}
	rec.Groups = nil
	rec.Cause = ""
	rec.Reclustered = false
}

// classify mirrors Recorder.classify for the multi recorder.
func (r *MultiRecorder) classify(err error) {
	if errors.Is(err, chaos.ErrInjected) {
		r.rec.Tolerated = true
		r.rec.Cause = "chaos-masked"
	}
	var ie *invariant.Error
	if errors.As(err, &ie) {
		r.rec.Guard = ie.Error()
		r.rec.Cause = "guard-veto"
	} else if !r.rec.Tolerated {
		r.rec.Err = err.Error()
	}
}
