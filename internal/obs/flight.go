package obs

// Flight recorder: the black-box layer behind incident forensics. Full
// JSONL tracing of a 1000-node fleet is too heavy to leave on, so each
// node instead keeps a small fixed-capacity ring of full-resolution
// entries — always armed, allocation-free once warm — and the fleet
// snapshots it into an incident bundle only when something goes wrong
// (an SLO-burn alert fires, a guard vetoes, a node freezes or is lost).
//
// Two shapes live here:
//
//   - FlightRing[T] is the generic ring: unsynchronized, single-writer,
//     value-copy on push. The fleet keeps one FlightRing[FlightEntry]
//     per node; entries are plain structs (string fields copy their
//     headers, not their bytes), so Push is a slot assignment — a few
//     nanoseconds over doing nothing, and 0 allocs/op warm.
//   - Flight is the Record-typed sink for single-node runs: the
//     unsynchronized analogue of Ring that deep-copies Decisions and
//     Groups into per-slot buffers grown on first contact, so steady
//     state stays allocation-free while multi-HP records survive slot
//     reuse intact.
//
// Neither is safe for concurrent use; the fleet writes each node's ring
// from exactly one executor worker per period and snapshots only after
// the stepping barrier, under the cluster lock.

// FlightRing is a fixed-capacity, single-writer ring buffer. Push never
// allocates; Snapshot appends oldest-first into a caller-supplied slice.
type FlightRing[T any] struct {
	slots []T
	pos   int // next write position
	n     int // valid slots (<= len(slots))
	total int // values ever pushed
}

// NewFlightRing creates a ring retaining the most recent capacity values.
func NewFlightRing[T any](capacity int) *FlightRing[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRing[T]{slots: make([]T, capacity)}
}

// Push copies v into the ring, evicting the oldest value when full.
func (g *FlightRing[T]) Push(v T) {
	g.slots[g.pos] = v
	g.pos = (g.pos + 1) % len(g.slots)
	if g.n < len(g.slots) {
		g.n++
	}
	g.total++
}

// Len returns the number of values currently held.
func (g *FlightRing[T]) Len() int { return g.n }

// Cap returns the ring capacity.
func (g *FlightRing[T]) Cap() int { return len(g.slots) }

// Total returns the number of values ever pushed (held or evicted).
func (g *FlightRing[T]) Total() int { return g.total }

// Snapshot appends the held values oldest-first to dst and returns the
// extended slice. Values are shallow copies: callers that need isolation
// from future pushes own the returned slice, but any reference fields
// inside T still alias whatever the producer stored.
func (g *FlightRing[T]) Snapshot(dst []T) []T {
	start := g.pos - g.n
	if start < 0 {
		start += len(g.slots)
	}
	for i := 0; i < g.n; i++ {
		dst = append(dst, g.slots[(start+i)%len(g.slots)])
	}
	return dst
}

// Reset empties the ring without releasing its slots.
func (g *FlightRing[T]) Reset() {
	var zero T
	for i := range g.slots {
		g.slots[i] = zero
	}
	g.pos, g.n, g.total = 0, 0, 0
}

// Flight is the Record-typed flight recorder for single-node runs: a
// fixed-capacity ring sink retaining the last W periods at full
// resolution. Unlike Ring it takes no lock — it belongs to exactly one
// recording loop — and unlike Ring it also preserves per-group (v2)
// decisions across slot reuse. Per-slot buffers grow to the workload's
// group count on first contact and are reused from then on, so a warm
// Flight emits at 0 allocs/op (TestFlightRecorderAllocFree pins this).
type Flight struct {
	slots []flightSlot
	pos   int
	n     int
	total int
}

// flightSlot owns the backing buffers the retained record's slices point
// into, so retention never aliases the Recorder's scratch.
type flightSlot struct {
	rec    Record
	dec    [maxDecisions]string
	groups []GroupRecord
	gdec   [][maxDecisions]string
}

// NewFlight creates a flight recorder holding the most recent capacity
// records.
func NewFlight(capacity int) *Flight {
	if capacity < 1 {
		capacity = 1
	}
	return &Flight{slots: make([]flightSlot, capacity)}
}

// Emit implements Sink.
func (f *Flight) Emit(r *Record) {
	s := &f.slots[f.pos]
	s.rec = *r
	nd := copy(s.dec[:], r.Decisions)
	s.rec.Decisions = s.dec[:nd]
	if ng := len(r.Groups); ng > 0 {
		if cap(s.groups) < ng {
			s.groups = make([]GroupRecord, ng)
			s.gdec = make([][maxDecisions]string, ng)
		}
		s.groups = s.groups[:ng]
		s.gdec = s.gdec[:ng]
		copy(s.groups, r.Groups)
		for i := range s.groups {
			n := copy(s.gdec[i][:], r.Groups[i].Decisions)
			s.groups[i].Decisions = s.gdec[i][:n]
		}
		s.rec.Groups = s.groups
	} else {
		s.rec.Groups = nil
	}
	f.pos = (f.pos + 1) % len(f.slots)
	if f.n < len(f.slots) {
		f.n++
	}
	f.total++
}

// Len returns the number of records currently held.
func (f *Flight) Len() int { return f.n }

// Total returns the number of records ever emitted (held or evicted).
func (f *Flight) Total() int { return f.total }

// Snapshot returns the held records oldest-first as independent deep
// copies, safe to serialise while the ring keeps recording.
func (f *Flight) Snapshot() []Record {
	out := make([]Record, 0, f.n)
	start := f.pos - f.n
	if start < 0 {
		start += len(f.slots)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.slots[(start+i)%len(f.slots)].rec.clone())
	}
	return out
}

var _ Sink = (*Flight)(nil)
