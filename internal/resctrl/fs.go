package resctrl

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
)

// FS presents a System through the file paths and text formats of the
// Linux resctrl filesystem, so tooling (and people) can drive the
// emulation the way they would drive /sys/fs/resctrl on real hardware:
//
//	fs := resctrl.NewFS(sys)
//	fs.Mkdir("/hp")                          // create a control group
//	fs.WriteFile("/hp/schemata", "L3:0=ffffe")
//	occ, _ := fs.ReadFile("/hp/mon_data/mon_L3_00/llc_occupancy")
//
// Supported tree (a faithful subset of the kernel's):
//
//	/info/L3/cbm_mask            full-platform CBM (hex)
//	/info/L3/min_cbm_bits        minimum mask width (always "1")
//	/info/L3/num_closids         number of CLOS
//	/schemata                    root group = CLOS 0
//	/cpus_list                   cores of CLOS 0 (read-only here)
//	/mon_data/mon_L3_00/llc_occupancy
//	/mon_data/mon_L3_00/mbm_total_bytes
//	/<group>/...                 same files for created groups
//
// Group directories map to CLOS ids in creation order: the root is CLOS 0,
// the first Mkdir gets CLOS 1, and so on. Removing a group resets its mask
// to the full mask and frees the CLOS for reuse, as the kernel does.
type FS struct {
	sys    System
	groups map[string]int // group name -> clos ("" is the root)
}

// NewFS wraps sys in the filesystem facade.
func NewFS(sys System) *FS {
	return &FS{sys: sys, groups: map[string]int{"": 0}}
}

// fullMask returns the platform CBM.
func (f *FS) fullMask() uint64 {
	ways := f.sys.NumWays()
	if ways >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(ways)) - 1
}

// Mkdir creates a control group backed by the lowest free CLOS.
func (f *FS) Mkdir(p string) error {
	name, err := f.groupName(p, false)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("resctrl: cannot create root")
	}
	if _, ok := f.groups[name]; ok {
		return fmt.Errorf("resctrl: group %q exists", name)
	}
	used := make(map[int]bool, len(f.groups))
	for _, c := range f.groups {
		used[c] = true
	}
	for clos := 0; clos < f.sys.NumClos(); clos++ {
		if !used[clos] {
			f.groups[name] = clos
			return nil
		}
	}
	return fmt.Errorf("resctrl: out of CLOS ids (%d)", f.sys.NumClos())
}

// Rmdir removes a control group, resetting its CLOS to the full mask.
func (f *FS) Rmdir(p string) error {
	name, err := f.groupName(p, false)
	if err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("resctrl: cannot remove root")
	}
	clos, ok := f.groups[name]
	if !ok {
		return fmt.Errorf("resctrl: no group %q", name)
	}
	if err := f.sys.SetCBM(clos, f.fullMask()); err != nil {
		return err
	}
	delete(f.groups, name)
	return nil
}

// List returns the directory entries at p.
func (f *FS) List(p string) ([]string, error) {
	clean := path.Clean("/" + p)
	switch clean {
	case "/":
		out := []string{"cpus_list", "info", "mon_data", "schemata"}
		var names []string
		for name := range f.groups {
			if name != "" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		return append(out, names...), nil
	case "/info":
		return []string{"L3"}, nil
	case "/info/L3":
		return []string{"cbm_mask", "min_cbm_bits", "num_closids"}, nil
	}
	if name, err := f.groupName(clean, true); err == nil {
		if _, ok := f.groups[name]; ok {
			return []string{"cpus_list", "mon_data", "schemata"}, nil
		}
	}
	if strings.HasSuffix(clean, "/mon_data") || strings.HasSuffix(clean, "/mon_data/mon_L3_00") {
		if strings.HasSuffix(clean, "/mon_data") {
			return []string{"mon_L3_00"}, nil
		}
		return []string{"llc_occupancy", "mbm_total_bytes"}, nil
	}
	return nil, fmt.Errorf("resctrl: no directory %q", p)
}

// ReadFile returns the contents of the file at p, newline-terminated like
// the kernel's.
func (f *FS) ReadFile(p string) (string, error) {
	clean := path.Clean("/" + p)
	switch clean {
	case "/info/L3/cbm_mask":
		return fmt.Sprintf("%x\n", f.fullMask()), nil
	case "/info/L3/min_cbm_bits":
		return "1\n", nil
	case "/info/L3/num_closids":
		return fmt.Sprintf("%d\n", f.sys.NumClos()), nil
	}
	group, file, err := f.splitGroupFile(clean)
	if err != nil {
		return "", err
	}
	clos, ok := f.groups[group]
	if !ok {
		return "", fmt.Errorf("resctrl: no group %q", group)
	}
	switch file {
	case "schemata":
		s := Schemata{Resource: "L3", Masks: map[int]uint64{0: f.sys.CBM(clos)}}
		return FormatSchemata(s, f.sys.NumWays()) + "\n", nil
	case "cpus_list":
		var cores []string
		for _, c := range f.sys.Counters().Cores {
			if c.Clos == clos {
				cores = append(cores, strconv.Itoa(c.Core))
			}
		}
		return strings.Join(cores, ",") + "\n", nil
	case "mon_data/mon_L3_00/llc_occupancy":
		for _, g := range f.sys.Counters().Groups {
			if g.Clos == clos {
				return fmt.Sprintf("%d\n", int64(g.OccupancyBytes)), nil
			}
		}
		return "0\n", nil
	case "mon_data/mon_L3_00/mbm_total_bytes":
		for _, g := range f.sys.Counters().Groups {
			if g.Clos == clos {
				return fmt.Sprintf("%d\n", int64(g.MemBytes)), nil
			}
		}
		return "0\n", nil
	}
	return "", fmt.Errorf("resctrl: no file %q", p)
}

// WriteFile writes data to the file at p. Only schemata files are
// writable, as in the kernel (cpus assignment is fixed at Attach time in
// the simulator).
func (f *FS) WriteFile(p, data string) error {
	clean := path.Clean("/" + p)
	group, file, err := f.splitGroupFile(clean)
	if err != nil {
		return err
	}
	clos, ok := f.groups[group]
	if !ok {
		return fmt.Errorf("resctrl: no group %q", group)
	}
	if file != "schemata" {
		return fmt.Errorf("resctrl: %q is not writable", p)
	}
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		s, err := ParseSchemata(line, f.sys.NumWays())
		if err != nil {
			return err
		}
		switch s.Resource {
		case "L3":
			mask, ok := s.Masks[0]
			if !ok {
				return fmt.Errorf("resctrl: schemata %q missing domain 0", line)
			}
			if err := f.sys.SetCBM(clos, mask); err != nil {
				return err
			}
		case "MB":
			pct, ok := s.Percent[0]
			if !ok {
				return fmt.Errorf("resctrl: schemata %q missing domain 0", line)
			}
			// MBA exposes percent-of-peak throttling; convert to Gbps.
			cap := f.sys.LinkCapacityGbps() * float64(pct) / 100
			if err := f.sys.SetMBACap(clos, cap); err != nil {
				return err
			}
		}
	}
	return nil
}

// groupName extracts the group component from a path like "/hp" or "/".
func (f *FS) groupName(p string, allowNested bool) (string, error) {
	clean := strings.Trim(path.Clean("/"+p), "/")
	if clean == "" {
		return "", nil
	}
	if strings.Contains(clean, "/") && !allowNested {
		return "", fmt.Errorf("resctrl: nested groups are not supported (%q)", p)
	}
	return strings.Split(clean, "/")[0], nil
}

// splitGroupFile splits "/hp/schemata" into ("hp", "schemata") and
// "/schemata" into ("", "schemata"); mon_data subpaths stay in the file
// part.
func (f *FS) splitGroupFile(clean string) (group, file string, err error) {
	parts := strings.Split(strings.Trim(clean, "/"), "/")
	if len(parts) == 0 || parts[0] == "" {
		return "", "", fmt.Errorf("resctrl: %q is a directory", clean)
	}
	if _, ok := f.groups[parts[0]]; ok && len(parts) > 1 {
		return parts[0], strings.Join(parts[1:], "/"), nil
	}
	return "", strings.Join(parts, "/"), nil
}
