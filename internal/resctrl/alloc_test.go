package resctrl

import "testing"

// The experiment engine samples the meter once per monitoring period —
// ~557k times across the 59×59 sweep — so the steady-state sampling
// path (Runner snapshot → Emu counters → Meter period) is pinned at
// zero allocations per call.

func TestMeterSampleSteadyStateZeroAlloc(t *testing.T) {
	e := testEmu(t, false)
	m := NewMeter(e)
	// Warm the Meter- and Emu-owned buffers.
	for i := 0; i < 3; i++ {
		e.Runner().Step(0.25)
		m.Sample()
	}
	if got := testing.AllocsPerRun(200, func() {
		e.Runner().Step(0.25)
		if p := m.Sample(); p.Seconds <= 0 {
			t.Error("non-positive period")
		}
	}); got != 0 {
		t.Errorf("steady-state Sample allocates %v/op, want 0", got)
	}
}

func TestCountersIntoSteadyStateZeroAlloc(t *testing.T) {
	e := testEmu(t, false)
	var c Counters
	e.CountersInto(&c)
	if got := testing.AllocsPerRun(200, func() {
		e.CountersInto(&c)
	}); got != 0 {
		t.Errorf("steady-state CountersInto allocates %v/op, want 0", got)
	}
}

func TestRebaselineSteadyStateZeroAlloc(t *testing.T) {
	e := testEmu(t, false)
	m := NewMeter(e)
	m.Rebaseline()
	if got := testing.AllocsPerRun(200, func() {
		m.Rebaseline()
	}); got != 0 {
		t.Errorf("steady-state Rebaseline allocates %v/op, want 0", got)
	}
}
