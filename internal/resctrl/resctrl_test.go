package resctrl

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/machine"
	"dicer/internal/mrc"
	"dicer/internal/sim"
)

func testApp(name string) app.Profile {
	return app.Profile{Name: name, Suite: "test", Class: app.ClassMixed,
		Phases: []app.Phase{{
			Name: "p", Instructions: 1e12, BaseCPI: 0.8, APKI: 12,
			Curve: mrc.MustCurve(0.2, mrc.Component{Bytes: 2 * app.MB, Frac: 0.4}),
		}}}
}

func testEmu(t *testing.T, withMBA bool) *Emu {
	t.Helper()
	r, err := sim.New(machine.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, 0, testApp("hp")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := r.Attach(i, 1, testApp("be")); err != nil {
			t.Fatal(err)
		}
	}
	return NewEmu(r, withMBA)
}

func TestEmuGeometry(t *testing.T) {
	e := testEmu(t, false)
	if e.NumWays() != 20 || e.NumClos() != 2 {
		t.Fatalf("geometry %d ways / %d clos, want 20/2", e.NumWays(), e.NumClos())
	}
	if got := e.LinkCapacityGbps(); math.Abs(got-68.3) > 1e-9 {
		t.Fatalf("link capacity = %g", got)
	}
}

func TestEmuCBMRoundTrip(t *testing.T) {
	e := testEmu(t, false)
	if err := e.SetCBM(0, 0xffffe); err != nil {
		t.Fatal(err)
	}
	if got := e.CBM(0); got != 0xffffe {
		t.Fatalf("CBM readback %#x", got)
	}
	if err := e.SetCBM(0, 0x5); err == nil {
		t.Fatal("expected contiguity error")
	}
}

func TestEmuMBAGate(t *testing.T) {
	e := testEmu(t, false)
	if err := e.SetMBACap(1, 20); err == nil {
		t.Fatal("expected error on platform without MBA")
	}
	e2 := testEmu(t, true)
	if err := e2.SetMBACap(1, 20); err != nil {
		t.Fatal(err)
	}
}

func TestEmuCountersMonotone(t *testing.T) {
	e := testEmu(t, false)
	before := e.Counters()
	e.Runner().Step(1)
	after := e.Counters()
	if after.Time <= before.Time {
		t.Fatal("time did not advance")
	}
	for i := range after.Cores {
		if after.Cores[i].Instructions <= before.Cores[i].Instructions {
			t.Fatalf("core %d instructions did not advance", i)
		}
	}
	for i := range after.Groups {
		if after.Groups[i].MemBytes < before.Groups[i].MemBytes {
			t.Fatalf("group %d memory bytes went backwards", i)
		}
	}
}

func TestMeterDeltas(t *testing.T) {
	e := testEmu(t, false)
	m := NewMeter(e)
	e.Runner().Step(1)
	p := m.Sample()
	if math.Abs(p.Seconds-1) > 1e-9 {
		t.Fatalf("period length %g, want 1", p.Seconds)
	}
	hpIPC := p.CoreIPC(0)
	if hpIPC <= 0 || hpIPC > 2 {
		t.Fatalf("HP period IPC %g implausible", hpIPC)
	}
	if p.TotalGbps <= 0 {
		t.Fatal("no bandwidth measured")
	}
	// Second sample: the delta should be roughly the same steady state,
	// not the cumulative double.
	e.Runner().Step(1)
	p2 := m.Sample()
	if math.Abs(p2.CoreIPC(0)-hpIPC) > 0.05*hpIPC {
		t.Fatalf("steady state IPC drifted: %g vs %g", p2.CoreIPC(0), hpIPC)
	}
	if math.Abs(p2.TotalGbps-p.TotalGbps) > 0.1*p.TotalGbps {
		t.Fatalf("steady state bandwidth drifted: %g vs %g", p2.TotalGbps, p.TotalGbps)
	}
}

func TestMeterGroupHelpers(t *testing.T) {
	e := testEmu(t, false)
	m := NewMeter(e)
	e.Runner().Step(1)
	p := m.Sample()
	if p.GroupBW(0) <= 0 || p.GroupBW(1) <= 0 {
		t.Fatal("group bandwidth not measured")
	}
	if p.GroupBW(7) != 0 {
		t.Fatal("unknown group should report 0")
	}
	if p.CoreIPC(99) != 0 {
		t.Fatal("unknown core should report 0")
	}
	if p.ClosMeanIPC(1) <= 0 {
		t.Fatal("BE class mean IPC missing")
	}
	if p.ClosMeanIPC(9) != 0 {
		t.Fatal("unknown class mean should be 0")
	}
	total := p.GroupBW(0) + p.GroupBW(1)
	if math.Abs(total-p.TotalGbps) > 1e-9 {
		t.Fatalf("group bandwidths %g do not sum to total %g", total, p.TotalGbps)
	}
}

// ---------------------------------------------------------------------------
// Schemata codec

func TestParseSchemataL3(t *testing.T) {
	s, err := ParseSchemata("L3:0=fffff;1=00001", 20)
	if err != nil {
		t.Fatal(err)
	}
	if s.Resource != "L3" {
		t.Fatalf("resource %q", s.Resource)
	}
	if s.Masks[0] != 0xfffff || s.Masks[1] != 1 {
		t.Fatalf("masks %+v", s.Masks)
	}
}

func TestParseSchemataMB(t *testing.T) {
	s, err := ParseSchemata("MB:0=50", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Percent[0] != 50 {
		t.Fatalf("percent %+v", s.Percent)
	}
}

func TestParseSchemataErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"L2:0=f",   // unsupported resource
		"L3:0",     // missing value
		"L3:x=f",   // bad id
		"L3:0=zz",  // bad hex
		"L3:0=5",   // non-contiguous (with ways=20)
		"L3:0=0",   // empty mask
		"MB:0=0",   // percent out of range
		"MB:0=101", // percent out of range
	}
	for _, line := range bad {
		if _, err := ParseSchemata(line, 20); err == nil {
			t.Errorf("expected parse error for %q", line)
		}
	}
}

func TestFormatSchemata(t *testing.T) {
	s := Schemata{Resource: "L3", Masks: map[int]uint64{1: 1, 0: 0xffffe}}
	if got := FormatSchemata(s, 20); got != "L3:0=ffffe;1=00001" {
		t.Fatalf("formatted %q", got)
	}
	mb := Schemata{Resource: "MB", Percent: map[int]int{0: 50}}
	if got := FormatSchemata(mb, 0); got != "MB:0=50" {
		t.Fatalf("formatted %q", got)
	}
}

// Property: format -> parse round-trips arbitrary valid contiguous masks.
func TestPropertySchemataRoundTrip(t *testing.T) {
	f := func(lowRaw, widthRaw, ways2 uint8) bool {
		ways := int(ways2%19) + 2
		width := int(widthRaw)%ways + 1
		low := int(lowRaw) % (ways - width + 1)
		mask := cache.ContiguousMask(low, width)
		s := Schemata{Resource: "L3", Masks: map[int]uint64{0: mask, 1: 1}}
		line := FormatSchemata(s, ways)
		parsed, err := ParseSchemata(line, ways)
		if err != nil {
			return false
		}
		return parsed.Masks[0] == mask && parsed.Masks[1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Filesystem facade

func testFS(t *testing.T) (*FS, *Emu) {
	t.Helper()
	e := testEmu(t, true)
	return NewFS(e), e
}

func TestFSInfoFiles(t *testing.T) {
	fs, _ := testFS(t)
	cbm, err := fs.ReadFile("/info/L3/cbm_mask")
	if err != nil || cbm != "fffff\n" {
		t.Fatalf("cbm_mask = %q, err %v", cbm, err)
	}
	n, err := fs.ReadFile("/info/L3/num_closids")
	if err != nil || n != "2\n" {
		t.Fatalf("num_closids = %q, err %v", n, err)
	}
	if _, err := fs.ReadFile("/info/L3/nope"); err == nil {
		t.Fatal("expected error for unknown info file")
	}
}

func TestFSMkdirAssignsClos(t *testing.T) {
	fs, e := testFS(t)
	if err := fs.Mkdir("/be"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/be/schemata", "L3:0=00001"); err != nil {
		t.Fatal(err)
	}
	if got := e.CBM(1); got != 1 {
		t.Fatalf("group write did not reach CLOS 1: %#x", got)
	}
	// Only 2 CLOS on this platform: a second group must fail.
	if err := fs.Mkdir("/more"); err == nil {
		t.Fatal("expected out-of-closids error")
	}
	if err := fs.Mkdir("/be"); err == nil {
		t.Fatal("expected error for duplicate group")
	}
	if err := fs.Mkdir("/a/b"); err == nil {
		t.Fatal("expected error for nested group")
	}
}

func TestFSRmdirResetsMask(t *testing.T) {
	fs, e := testFS(t)
	if err := fs.Mkdir("/be"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/be/schemata", "L3:0=00001"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/be"); err != nil {
		t.Fatal(err)
	}
	if got := e.CBM(1); got != 0xfffff {
		t.Fatalf("mask after rmdir = %#x, want full", got)
	}
	if err := fs.Rmdir("/be"); err == nil {
		t.Fatal("expected error removing twice")
	}
	if err := fs.Rmdir("/"); err == nil {
		t.Fatal("expected error removing root")
	}
	// CLOS 1 is free again.
	if err := fs.Mkdir("/again"); err != nil {
		t.Fatal(err)
	}
}

func TestFSSchemataReadWrite(t *testing.T) {
	fs, e := testFS(t)
	if err := fs.WriteFile("/schemata", "L3:0=ffffe"); err != nil {
		t.Fatal(err)
	}
	if got := e.CBM(0); got != 0xffffe {
		t.Fatalf("root schemata write did not land: %#x", got)
	}
	s, err := fs.ReadFile("/schemata")
	if err != nil {
		t.Fatal(err)
	}
	if s != "L3:0=ffffe\n" {
		t.Fatalf("schemata readback %q", s)
	}
	if err := fs.WriteFile("/schemata", "L3:0=50005"); err == nil {
		t.Fatal("expected error for non-contiguous mask")
	}
	if err := fs.WriteFile("/cpus_list", "1"); err == nil {
		t.Fatal("expected error writing read-only file")
	}
}

func TestFSMBAWrite(t *testing.T) {
	fs, _ := testFS(t)
	if err := fs.Mkdir("/be"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/be/schemata", "MB:0=50"); err != nil {
		t.Fatal(err)
	}
	// Platform without MBA rejects the write.
	e2 := testEmu(t, false)
	fs2 := NewFS(e2)
	if err := fs2.WriteFile("/schemata", "MB:0=50"); err == nil {
		t.Fatal("expected error on MBA-less platform")
	}
}

func TestFSMonitoringFiles(t *testing.T) {
	fs, e := testFS(t)
	e.Runner().Step(1)
	occ, err := fs.ReadFile("/mon_data/mon_L3_00/llc_occupancy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(occ, "\n") || occ == "0\n" {
		t.Fatalf("llc_occupancy = %q", occ)
	}
	bw, err := fs.ReadFile("/mon_data/mon_L3_00/mbm_total_bytes")
	if err != nil {
		t.Fatal(err)
	}
	if bw == "0\n" {
		t.Fatalf("mbm_total_bytes = %q", bw)
	}
}

func TestFSCpusList(t *testing.T) {
	fs, _ := testFS(t)
	cpus, err := fs.ReadFile("/cpus_list")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(cpus) != "0" {
		t.Fatalf("root cpus_list = %q, want 0", cpus)
	}
}

func TestFSList(t *testing.T) {
	fs, _ := testFS(t)
	if err := fs.Mkdir("/be"); err != nil {
		t.Fatal(err)
	}
	root, err := fs.List("/")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(root, ",")
	for _, want := range []string{"schemata", "info", "mon_data", "be"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("root listing %v missing %q", root, want)
		}
	}
	info, err := fs.List("/info/L3")
	if err != nil || len(info) != 3 {
		t.Fatalf("info listing %v, err %v", info, err)
	}
	if _, err := fs.List("/nope"); err == nil {
		t.Fatal("expected error listing unknown directory")
	}
}

func TestFSMonDataListing(t *testing.T) {
	fs, _ := testFS(t)
	mon, err := fs.List("/mon_data")
	if err != nil || len(mon) != 1 || mon[0] != "mon_L3_00" {
		t.Fatalf("mon_data listing %v, err %v", mon, err)
	}
	files, err := fs.List("/mon_data/mon_L3_00")
	if err != nil || len(files) != 2 {
		t.Fatalf("mon_L3_00 listing %v, err %v", files, err)
	}
}

func TestFSWriteErrors(t *testing.T) {
	fs, _ := testFS(t)
	if err := fs.WriteFile("/schemata", "L3:1=fffff"); err == nil {
		t.Fatal("expected error for schemata missing domain 0")
	}
	if err := fs.WriteFile("/schemata", "garbage"); err == nil {
		t.Fatal("expected parse error")
	}
	if err := fs.WriteFile("/nogroup/schemata", "L3:0=1"); err == nil {
		t.Fatal("expected error for unknown group")
	}
	if err := fs.WriteFile("/", "x"); err == nil {
		t.Fatal("expected error writing a directory")
	}
	// Blank lines in schemata writes are ignored (kernel behaviour).
	if err := fs.WriteFile("/schemata", "\nL3:0=fffff\n\n"); err != nil {
		t.Fatal(err)
	}
}

func TestFSGroupMonitoringSeparation(t *testing.T) {
	fs, e := testFS(t)
	if err := fs.Mkdir("/be"); err != nil {
		t.Fatal(err)
	}
	e.Runner().Step(2)
	rootBW, err := fs.ReadFile("/mon_data/mon_L3_00/mbm_total_bytes")
	if err != nil {
		t.Fatal(err)
	}
	beBW, err := fs.ReadFile("/be/mon_data/mon_L3_00/mbm_total_bytes")
	if err != nil {
		t.Fatal(err)
	}
	if rootBW == beBW {
		t.Fatalf("root and BE group report identical traffic %q", rootBW)
	}
}

func TestMeterWithNoTimeElapsed(t *testing.T) {
	e := testEmu(t, false)
	m := NewMeter(e)
	p := m.Sample() // immediately: zero-length period
	if p.Seconds != 0 {
		t.Fatalf("period length %g", p.Seconds)
	}
	if p.TotalGbps != 0 {
		t.Fatalf("zero-length period bandwidth %g", p.TotalGbps)
	}
	for _, c := range p.Cores {
		if c.IPC != 0 {
			t.Fatalf("zero-length period IPC %g", c.IPC)
		}
	}
}

func BenchmarkMeterSample(b *testing.B) {
	r, err := sim.New(machine.Default(), 2)
	if err != nil {
		b.Fatal(err)
	}
	_ = r.Attach(0, 0, testApp("hp"))
	for i := 1; i < 10; i++ {
		_ = r.Attach(i, 1, testApp("be"))
	}
	e := NewEmu(r, false)
	m := NewMeter(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Step(0.25)
		m.Sample()
	}
}
