// Package resctrl emulates the monitoring and allocation interface of
// Intel Resource Director Technology (RDT) as exposed by Linux through the
// resctrl filesystem and by the intel-cmt-cat library the DICER paper
// builds on (§3.3):
//
//   - CAT  (Cache Allocation Technology): per-CLOS capacity bit-masks.
//   - CMT  (Cache Monitoring Technology): per-group LLC occupancy.
//   - MBM  (Memory Bandwidth Monitoring): per-group memory traffic.
//   - MBA  (Memory Bandwidth Allocation): per-CLOS bandwidth caps
//     (the paper's server lacked MBA; we provide it for the §6 extension).
//
// The package defines the System interface that the DICER controller and
// the baseline policies are written against; Emu implements it on top of
// the simulator in internal/sim, and a real-hardware implementation could
// be substituted without touching any policy code. FS (fs.go) additionally
// exposes the emulation through resctrl's file paths and text formats, so
// the substrate can be driven exactly like /sys/fs/resctrl.
package resctrl

import (
	"fmt"

	"dicer/internal/sim"
)

// CoreSample is a per-core performance-counter reading.
type CoreSample struct {
	Core         int
	Clos         int
	Name         string // attached workload name (reporting aid)
	Instructions float64
	Cycles       float64
}

// IPC returns instructions per cycle for the sample window.
func (c CoreSample) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Instructions / c.Cycles
}

// GroupSample is a per-CLOS monitoring reading.
type GroupSample struct {
	Clos           int
	CBM            uint64
	OccupancyBytes float64 // CMT: instantaneous LLC occupancy
	MemBytes       float64 // MBM: cumulative memory traffic
}

// Counters is a consistent reading of every monitored quantity.
type Counters struct {
	Time   float64 // seconds since boot
	Cores  []CoreSample
	Groups []GroupSample
}

// System is the hardware-facing interface policies are written against.
// Implementations: *Emu (simulator-backed, below); a Linux resctrl backend
// would satisfy it on real hardware.
type System interface {
	// NumWays returns the number of allocatable LLC ways.
	NumWays() int
	// NumClos returns the number of classes of service.
	NumClos() int
	// SetCBM installs a capacity bit-mask for a CLOS. Masks must be
	// non-zero, contiguous, and within NumWays bits (CAT hardware rules).
	SetCBM(clos int, mask uint64) error
	// CBM reads back the current mask of a CLOS.
	CBM(clos int) uint64
	// SetMBACap sets a per-CLOS memory bandwidth cap in Gbps; 0 uncaps.
	// Systems without MBA return an error.
	SetMBACap(clos int, gbps float64) error
	// LinkCapacityGbps returns the peak memory-link bandwidth, used to
	// convert MBA percent-of-peak throttles to absolute caps.
	LinkCapacityGbps() float64
	// Counters reads all monitoring counters.
	Counters() Counters
}

// CountersReader is an optional System extension: implementations fill a
// caller-owned Counters in place, reusing its slices, instead of
// allocating a fresh reading per call. Meter prefers it when available,
// which keeps per-period sampling allocation-free on the simulator-backed
// substrate. The filled Counters aliases no implementation-owned state.
type CountersReader interface {
	CountersInto(*Counters)
}

// Emu implements System over the discrete-time simulator.
type Emu struct {
	r      *sim.Runner
	hasMBA bool
	snap   sim.Snapshot // scratch reused by CountersInto
}

// NewEmu wraps a simulator runner. withMBA controls whether SetMBACap is
// available (the paper's Broadwell server lacked MBA, so experiments that
// reproduce the paper construct the emulation without it).
func NewEmu(r *sim.Runner, withMBA bool) *Emu {
	return &Emu{r: r, hasMBA: withMBA}
}

// Runner exposes the underlying simulator (experiments need to advance
// time; a real backend has no equivalent — time advances by itself).
func (e *Emu) Runner() *sim.Runner { return e.r }

// NumWays implements System.
func (e *Emu) NumWays() int { return e.r.Machine().LLCWays }

// NumClos implements System.
func (e *Emu) NumClos() int { return e.r.NumClos() }

// SetCBM implements System.
func (e *Emu) SetCBM(clos int, mask uint64) error { return e.r.SetMask(clos, mask) }

// CBM implements System.
func (e *Emu) CBM(clos int) uint64 { return e.r.Mask(clos) }

// SetMBACap implements System.
func (e *Emu) SetMBACap(clos int, gbps float64) error {
	if !e.hasMBA {
		return fmt.Errorf("resctrl: platform has no MBA support")
	}
	return e.r.SetBWCap(clos, gbps)
}

// LinkCapacityGbps implements System.
func (e *Emu) LinkCapacityGbps() float64 { return e.r.Machine().Link.CapacityGBps }

// MoveCore reassigns the process on a core to another class of service —
// the emulated write of a PID into a different resctrl group's tasks
// file. The process keeps its execution position and counters; the
// multi-HP controller's re-clustering path uses this. CoreMover
// (below) is the optional-capability interface controllers probe for.
func (e *Emu) MoveCore(core, clos int) error { return e.r.SetClos(core, clos) }

// CoreMover is an optional System extension: systems that can move a
// running core between CLOS groups (all resctrl-style substrates can,
// via the tasks file) implement it. Controllers that re-cluster probe
// for it with a type assertion and hold the grouping static when absent.
type CoreMover interface {
	MoveCore(core, clos int) error
}

// ParkCore suspends the process on a core (thread packing). This is not an
// RDT capability — it models the OS-scheduler actuator that the paper's §6
// BE-count extension relies on; internal/ext declares the CoreParker
// interface that this method satisfies.
func (e *Emu) ParkCore(core int) error { return e.r.SetCoreParked(core, true) }

// UnparkCore resumes the process on a core.
func (e *Emu) UnparkCore(core int) error { return e.r.SetCoreParked(core, false) }

// CoreParked reports whether a core is parked.
func (e *Emu) CoreParked(core int) bool { return e.r.CoreParked(core) }

// Counters implements System.
func (e *Emu) Counters() Counters {
	var out Counters
	e.CountersInto(&out)
	return out
}

// CountersInto implements CountersReader: it fills out with a fresh
// reading, reusing out's slices when their capacity suffices. The
// simulator snapshot behind it is Emu-owned scratch; the filled Counters
// shares nothing with it.
func (e *Emu) CountersInto(out *Counters) {
	e.r.SnapshotInto(&e.snap)
	out.Time = e.snap.Time
	out.Cores = out.Cores[:0]
	out.Groups = out.Groups[:0]
	for _, c := range e.snap.Cores {
		out.Cores = append(out.Cores, CoreSample{
			Core:         c.Core,
			Clos:         c.Clos,
			Name:         c.Name,
			Instructions: c.Instructions,
			Cycles:       c.Cycles,
		})
	}
	for _, g := range e.snap.Clos {
		out.Groups = append(out.Groups, GroupSample{
			Clos:           g.Clos,
			CBM:            g.Mask,
			OccupancyBytes: g.OccupancyBytes,
			MemBytes:       g.MemBytes,
		})
	}
}

var (
	_ System         = (*Emu)(nil)
	_ CountersReader = (*Emu)(nil)
)
