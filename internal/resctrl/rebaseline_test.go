package resctrl

import (
	"testing"

	"dicer/internal/app"
	"dicer/internal/machine"
	"dicer/internal/sim"
)

// TestMeterRebaseline pins the attach/detach hygiene the fleet layer
// relies on: after swapping the process on a core, a rebaselined meter
// reports sane (non-negative) per-period readings, whereas the stale
// baseline would subtract the old process's cumulative counters from the
// new one's.
func TestMeterRebaseline(t *testing.T) {
	m := machine.Default()
	r, err := sim.New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(0, 0, app.MustByName("omnetpp1")); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 1, app.MustByName("lbm1")); err != nil {
		t.Fatal(err)
	}
	emu := NewEmu(r, false)
	meter := NewMeter(emu)
	for i := 0; i < 8; i++ {
		r.Step(0.25)
	}
	p := meter.Sample()
	if p.CoreIPC(1) <= 0 {
		t.Fatalf("expected positive IPC on core 1, got %g", p.CoreIPC(1))
	}

	// Swap the job on core 1: counters restart from zero.
	if err := r.Detach(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Attach(1, 1, app.MustByName("gcc_base1")); err != nil {
		t.Fatal(err)
	}
	meter.Rebaseline()
	for i := 0; i < 8; i++ {
		r.Step(0.25)
	}
	p = meter.Sample()
	if ipc := p.CoreIPC(1); ipc <= 0 {
		t.Fatalf("rebaselined meter reported non-positive IPC %g for fresh process", ipc)
	}
	for _, g := range p.Groups {
		if g.BandwidthGbps < 0 {
			t.Fatalf("rebaselined meter reported negative bandwidth %g for clos %d", g.BandwidthGbps, g.Clos)
		}
	}
}
