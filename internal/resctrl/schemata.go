package resctrl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dicer/internal/cache"
)

// Schemata is the parsed form of a resctrl schemata line for one resource.
// The on-disk format written by Linux for an L3 CAT resource is
//
//	L3:0=fffff;1=00001
//
// mapping each cache domain id to a capacity bit-mask. This emulation
// models a single-socket machine, so domain ids map to CLOS ids here: the
// root group's schemata has one entry per CLOS. (Real resctrl puts each
// group's mask in its own file; FS in this package does the same, with one
// domain `0` per group. ParseSchemata/FormatSchemata handle both shapes.)
type Schemata struct {
	Resource string         // e.g. "L3", "MB"
	Masks    map[int]uint64 // domain/CLOS id -> CBM
	Percent  map[int]int    // for MB (MBA) lines: id -> throttle percent
}

// ParseSchemata parses one schemata line. Ways bounds mask validation;
// pass 0 to skip CBM validation (e.g. for MB lines).
func ParseSchemata(line string, ways int) (Schemata, error) {
	line = strings.TrimSpace(line)
	res, rest, ok := strings.Cut(line, ":")
	if !ok {
		return Schemata{}, fmt.Errorf("resctrl: schemata %q missing resource prefix", line)
	}
	s := Schemata{Resource: strings.TrimSpace(res)}
	switch s.Resource {
	case "L3":
		s.Masks = map[int]uint64{}
	case "MB":
		s.Percent = map[int]int{}
	default:
		return Schemata{}, fmt.Errorf("resctrl: unsupported resource %q", s.Resource)
	}
	for _, field := range strings.Split(rest, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		idStr, valStr, ok := strings.Cut(field, "=")
		if !ok {
			return Schemata{}, fmt.Errorf("resctrl: malformed schemata field %q", field)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id < 0 {
			return Schemata{}, fmt.Errorf("resctrl: bad domain id %q", idStr)
		}
		valStr = strings.TrimSpace(valStr)
		if s.Resource == "MB" {
			pct, err := strconv.Atoi(valStr)
			if err != nil || pct < 1 || pct > 100 {
				return Schemata{}, fmt.Errorf("resctrl: bad MB percent %q", valStr)
			}
			s.Percent[id] = pct
			continue
		}
		mask, err := strconv.ParseUint(valStr, 16, 64)
		if err != nil {
			return Schemata{}, fmt.Errorf("resctrl: bad CBM %q: %v", valStr, err)
		}
		if ways > 0 {
			if err := cache.CheckMask(mask, ways); err != nil {
				return Schemata{}, err
			}
		}
		s.Masks[id] = mask
	}
	return s, nil
}

// FormatSchemata renders a schemata line in resctrl's format, domains in
// ascending order, CBMs zero-padded to the platform width.
func FormatSchemata(s Schemata, ways int) string {
	width := (ways + 3) / 4
	if width == 0 {
		width = 1
	}
	var ids []int
	if s.Resource == "MB" {
		for id := range s.Percent {
			ids = append(ids, id)
		}
	} else {
		for id := range s.Masks {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		if s.Resource == "MB" {
			parts = append(parts, fmt.Sprintf("%d=%d", id, s.Percent[id]))
		} else {
			parts = append(parts, fmt.Sprintf("%d=%0*x", id, width, s.Masks[id]))
		}
	}
	return s.Resource + ":" + strings.Join(parts, ";")
}
