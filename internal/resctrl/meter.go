package resctrl

// Meter converts the cumulative counters a System exposes into per-period
// readings — exactly what a userspace controller does with RDT: read the
// MSRs, subtract the previous reading, divide by the period.
//
// Sampling is allocation-free in steady state: the Meter owns the backing
// arrays of the Period it returns and of its baseline reading, and reuses
// them every call. A returned Period is therefore valid only until the
// next Sample or Rebaseline on the same Meter — exactly the lifetime of a
// monitoring period. Callers that need a reading to outlive its period
// must copy the Cores and Groups slices.
type Meter struct {
	sys  System
	prev Counters // baseline reading (Meter-owned backing)
	cur  Counters // scratch for the in-place read path (Meter-owned)
	out  Period   // reused backing for the returned Period

	// Scratch maps for the slow path (population changed between
	// samples without a Rebaseline); lazily allocated, reused after.
	prevCores  map[int]CoreSample
	prevGroups map[int]GroupSample
}

// PeriodCore is one core's activity over a monitoring period.
type PeriodCore struct {
	Core int
	Clos int
	Name string
	IPC  float64
}

// PeriodGroup is one CLOS's activity over a monitoring period.
type PeriodGroup struct {
	Clos           int
	CBM            uint64
	OccupancyBytes float64 // instantaneous at period end
	BandwidthGbps  float64 // average over the period
}

// Period is a complete monitoring-period reading.
type Period struct {
	Seconds   float64
	Cores     []PeriodCore
	Groups    []PeriodGroup
	TotalGbps float64 // total memory bandwidth over the period
}

// NewMeter creates a Meter and takes the initial baseline reading.
func NewMeter(sys System) *Meter {
	m := &Meter{sys: sys}
	m.readInto(&m.prev)
	return m
}

// readInto reads the counters into c, using the in-place CountersReader
// path when the System offers it (the simulator-backed Emu does) and
// falling back to the allocating Counters call otherwise.
func (m *Meter) readInto(c *Counters) {
	if cr, ok := m.sys.(CountersReader); ok {
		cr.CountersInto(c)
		return
	}
	*c = m.sys.Counters()
}

// Rebaseline re-reads the counters and makes them the new baseline
// without producing a Period. Callers that change the monitored
// population between periods (the fleet layer attaches and detaches BE
// jobs at period boundaries) rebaseline so the next Sample never
// subtracts an old process's cumulative counters from a fresh one's.
func (m *Meter) Rebaseline() {
	m.readInto(&m.prev)
}

// Sample reads the counters, returns the delta since the previous Sample
// (or since construction), and advances the baseline. The returned
// Period's slices are Meter-owned and reused by the next Sample.
func (m *Meter) Sample() Period {
	m.readInto(&m.cur)
	cur, prev := &m.cur, &m.prev
	dt := cur.Time - prev.Time
	p := &m.out
	p.Seconds = dt
	p.TotalGbps = 0
	p.Cores = p.Cores[:0]
	p.Groups = p.Groups[:0]

	// Fast path: the monitored population is unchanged since the
	// baseline (same cores and CLOS groups in the same order — the
	// common case, since population changes rebaseline). Match
	// baseline entries by index instead of building lookup maps.
	if m.aligned() {
		for i, c := range cur.Cores {
			pc := prev.Cores[i]
			di := c.Instructions - pc.Instructions
			dc := c.Cycles - pc.Cycles
			ipc := 0.0
			if dc > 0 {
				ipc = di / dc
			}
			p.Cores = append(p.Cores, PeriodCore{Core: c.Core, Clos: c.Clos, Name: c.Name, IPC: ipc})
		}
		for i, g := range cur.Groups {
			p.Groups = append(p.Groups, m.periodGroup(g, prev.Groups[i].MemBytes, dt))
			p.TotalGbps += p.Groups[len(p.Groups)-1].BandwidthGbps
		}
		m.swap()
		return *p
	}

	// Slow path: population changed without a rebaseline — match by id,
	// treating absent baseline entries as zero (a fresh process's
	// cumulative counters start at zero, so the delta is its total).
	if m.prevCores == nil {
		m.prevCores = make(map[int]CoreSample, len(prev.Cores))
		m.prevGroups = make(map[int]GroupSample, len(prev.Groups))
	} else {
		clear(m.prevCores)
		clear(m.prevGroups)
	}
	for _, c := range prev.Cores {
		m.prevCores[c.Core] = c
	}
	for _, c := range cur.Cores {
		pc := m.prevCores[c.Core]
		di := c.Instructions - pc.Instructions
		dc := c.Cycles - pc.Cycles
		ipc := 0.0
		if dc > 0 {
			ipc = di / dc
		}
		p.Cores = append(p.Cores, PeriodCore{Core: c.Core, Clos: c.Clos, Name: c.Name, IPC: ipc})
	}
	for _, g := range prev.Groups {
		m.prevGroups[g.Clos] = g
	}
	for _, g := range cur.Groups {
		p.Groups = append(p.Groups, m.periodGroup(g, m.prevGroups[g.Clos].MemBytes, dt))
		p.TotalGbps += p.Groups[len(p.Groups)-1].BandwidthGbps
	}
	m.swap()
	return *p
}

// periodGroup converts one cumulative group reading to its per-period
// form given the baseline traffic counter.
func (m *Meter) periodGroup(g GroupSample, prevMemBytes, dt float64) PeriodGroup {
	bw := 0.0
	if dt > 0 {
		bw = (g.MemBytes - prevMemBytes) * 8 / dt / 1e9
	}
	return PeriodGroup{
		Clos:           g.Clos,
		CBM:            g.CBM,
		OccupancyBytes: g.OccupancyBytes,
		BandwidthGbps:  bw,
	}
}

// aligned reports whether the current reading matches the baseline
// entry-for-entry by core and CLOS id.
func (m *Meter) aligned() bool {
	if len(m.cur.Cores) != len(m.prev.Cores) || len(m.cur.Groups) != len(m.prev.Groups) {
		return false
	}
	for i := range m.cur.Cores {
		if m.cur.Cores[i].Core != m.prev.Cores[i].Core {
			return false
		}
	}
	for i := range m.cur.Groups {
		if m.cur.Groups[i].Clos != m.prev.Groups[i].Clos {
			return false
		}
	}
	return true
}

// swap makes the current reading the new baseline by exchanging the two
// buffers, so neither is copied and both backings are reused.
func (m *Meter) swap() {
	m.prev, m.cur = m.cur, m.prev
}

// GroupBW returns the bandwidth of the given CLOS in the period, or 0.
func (p Period) GroupBW(clos int) float64 {
	for _, g := range p.Groups {
		if g.Clos == clos {
			return g.BandwidthGbps
		}
	}
	return 0
}

// CoreIPC returns the IPC of the given core in the period, or 0.
func (p Period) CoreIPC(core int) float64 {
	for _, c := range p.Cores {
		if c.Core == core {
			return c.IPC
		}
	}
	return 0
}

// ClosMeanIPC returns the mean IPC over cores assigned to clos, or 0.
func (p Period) ClosMeanIPC(clos int) float64 {
	var sum float64
	var n int
	for _, c := range p.Cores {
		if c.Clos == clos {
			sum += c.IPC
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
