package resctrl

// Meter converts the cumulative counters a System exposes into per-period
// readings — exactly what a userspace controller does with RDT: read the
// MSRs, subtract the previous reading, divide by the period.
type Meter struct {
	sys  System
	prev Counters
}

// PeriodCore is one core's activity over a monitoring period.
type PeriodCore struct {
	Core int
	Clos int
	Name string
	IPC  float64
}

// PeriodGroup is one CLOS's activity over a monitoring period.
type PeriodGroup struct {
	Clos           int
	CBM            uint64
	OccupancyBytes float64 // instantaneous at period end
	BandwidthGbps  float64 // average over the period
}

// Period is a complete monitoring-period reading.
type Period struct {
	Seconds   float64
	Cores     []PeriodCore
	Groups    []PeriodGroup
	TotalGbps float64 // total memory bandwidth over the period
}

// NewMeter creates a Meter and takes the initial baseline reading.
func NewMeter(sys System) *Meter {
	return &Meter{sys: sys, prev: sys.Counters()}
}

// Rebaseline re-reads the counters and makes them the new baseline
// without producing a Period. Callers that change the monitored
// population between periods (the fleet layer attaches and detaches BE
// jobs at period boundaries) rebaseline so the next Sample never
// subtracts an old process's cumulative counters from a fresh one's.
func (m *Meter) Rebaseline() {
	m.prev = m.sys.Counters()
}

// Sample reads the counters, returns the delta since the previous Sample
// (or since construction), and advances the baseline.
func (m *Meter) Sample() Period {
	cur := m.sys.Counters()
	dt := cur.Time - m.prev.Time
	p := Period{Seconds: dt}

	prevCores := make(map[int]CoreSample, len(m.prev.Cores))
	for _, c := range m.prev.Cores {
		prevCores[c.Core] = c
	}
	for _, c := range cur.Cores {
		pc := prevCores[c.Core]
		di := c.Instructions - pc.Instructions
		dc := c.Cycles - pc.Cycles
		ipc := 0.0
		if dc > 0 {
			ipc = di / dc
		}
		p.Cores = append(p.Cores, PeriodCore{Core: c.Core, Clos: c.Clos, Name: c.Name, IPC: ipc})
	}

	prevGroups := make(map[int]GroupSample, len(m.prev.Groups))
	for _, g := range m.prev.Groups {
		prevGroups[g.Clos] = g
	}
	for _, g := range cur.Groups {
		pg := prevGroups[g.Clos]
		bw := 0.0
		if dt > 0 {
			bw = (g.MemBytes - pg.MemBytes) * 8 / dt / 1e9
		}
		p.Groups = append(p.Groups, PeriodGroup{
			Clos:           g.Clos,
			CBM:            g.CBM,
			OccupancyBytes: g.OccupancyBytes,
			BandwidthGbps:  bw,
		})
		p.TotalGbps += bw
	}

	m.prev = cur
	return p
}

// GroupBW returns the bandwidth of the given CLOS in the period, or 0.
func (p Period) GroupBW(clos int) float64 {
	for _, g := range p.Groups {
		if g.Clos == clos {
			return g.BandwidthGbps
		}
	}
	return 0
}

// CoreIPC returns the IPC of the given core in the period, or 0.
func (p Period) CoreIPC(core int) float64 {
	for _, c := range p.Cores {
		if c.Core == core {
			return c.IPC
		}
	}
	return 0
}

// ClosMeanIPC returns the mean IPC over cores assigned to clos, or 0.
func (p Period) ClosMeanIPC(clos int) float64 {
	var sum float64
	var n int
	for _, c := range p.Cores {
		if c.Clos == clos {
			sum += c.IPC
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
