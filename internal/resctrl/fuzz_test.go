package resctrl

import "testing"

// FuzzParseSchemata checks the schemata parser never panics and that
// accepted L3 lines round-trip through FormatSchemata.
func FuzzParseSchemata(f *testing.F) {
	for _, seed := range []string{
		"L3:0=fffff;1=00001",
		"L3:0=ffffe",
		"MB:0=50",
		"L3:0=0",
		"L3:",
		"L3",
		":0=1",
		"MB:0=999",
		"L3:0=zz;1=1",
		"L3:-1=1",
		"L3:0=1;;1=2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		s, err := ParseSchemata(line, 20)
		if err != nil {
			return
		}
		out := FormatSchemata(s, 20)
		s2, err := ParseSchemata(out, 20)
		if err != nil {
			t.Fatalf("formatted schemata %q (from %q) does not re-parse: %v", out, line, err)
		}
		if s.Resource != s2.Resource {
			t.Fatalf("resource changed across round trip: %q vs %q", s.Resource, s2.Resource)
		}
		for id, mask := range s.Masks {
			if s2.Masks[id] != mask {
				t.Fatalf("mask %d changed across round trip: %x vs %x", id, mask, s2.Masks[id])
			}
		}
		for id, pct := range s.Percent {
			if s2.Percent[id] != pct {
				t.Fatalf("percent %d changed across round trip", id)
			}
		}
	})
}
