package dicer

import (
	"errors"
	"fmt"

	"dicer/internal/app"
	"dicer/internal/chaos"
	"dicer/internal/core"
	"dicer/internal/invariant"
	"dicer/internal/metrics"
	"dicer/internal/obs"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// Scenario is a single co-location experiment: one HP application on core
// 0 plus BE applications on the remaining cores, run under a policy for a
// fixed horizon. It is the simplest entry point into the library; the
// experiment harness (Suite) builds on the same machinery with memoisation
// and workload sampling on top.
type Scenario struct {
	// Machine is the simulated platform; zero value means DefaultMachine.
	Machine Machine
	// HP is the high-priority application (CLOS 0, core 0).
	HP Profile
	// BEs are the best-effort applications, one per core starting at 1.
	BEs []Profile
	// PeriodSec is the monitoring period (default 1 s).
	PeriodSec float64
	// StepsPerPeriod subdivides each period for the simulator (default 4).
	StepsPerPeriod int
	// HorizonPeriods is the number of monitoring periods to run
	// (default 120).
	HorizonPeriods int
	// SLO is the HP's target fraction of alone performance (default
	// 0.9). It parameterises the SLOAchieved/SUCI views of the result
	// and is recorded in the trace header so the diagnostic layer
	// (dicer-trace analyze, the /alerts burn-rate alerter) evaluates
	// the same slowdown target live and offline.
	SLO float64
	// OnPeriod, when non-nil, receives every monitoring-period reading —
	// useful for live dashboards and the examples.
	OnPeriod func(period int, p Period)
	// WithMBA enables the MBA extension on the emulated platform (the
	// paper's server lacked it; required for the ext.DicerMBA policy).
	WithMBA bool
	// Chaos, when non-nil and active, wraps the emulated platform in the
	// deterministic fault-injection layer: counter dropout, frozen and
	// jittered readings, rejected and delayed schemata writes. Injected
	// actuation failures are tolerated (counted in the result); see
	// ChaosSchedules for the canned fault schedules.
	Chaos *ChaosConfig
	// ChaosSeed seeds the fault stream. The same scenario, schedule and
	// seed replay bit-identically.
	ChaosSeed int64
	// CheckInvariants wraps the policy in the runtime invariant guard:
	// the controller safety properties (mask legality, HP way bounds,
	// state and bookkeeping sanity, intent/installed consistency) are
	// machine-checked after every monitoring period, and a violation
	// aborts the run with an *InvariantError.
	CheckInvariants bool
	// Trace, when non-nil, receives one structured TraceRecord per
	// monitoring period: the counters the policy saw, the saturation
	// verdict, the controller's decisions and state, the masks
	// installed, and any chaos faults or guard interventions. Sinks that
	// accept a header (the JSONL writer) receive one before the first
	// record. Wire a NewTraceRing for in-memory inspection, a
	// NewTraceJSONL for a replayable audit file, or a NewPromExporter
	// for live metrics; tracing through the no-op sink costs zero
	// allocations per period.
	Trace obs.Sink
}

// NewScenario builds a Scenario from catalog names: one HP and beCount
// copies of one BE. It panics on unknown names (use the Scenario struct
// directly for full control and error handling).
func NewScenario(hp, be string, beCount int) *Scenario {
	hpProf := app.MustByName(hp)
	beProf := app.MustByName(be)
	bes := make([]Profile, beCount)
	for i := range bes {
		bes[i] = beProf
	}
	return &Scenario{HP: hpProf, BEs: bes}
}

// ScenarioResult summarises a scenario run.
type ScenarioResult struct {
	PolicyName string
	// HPIPC is the HP's cumulative IPC over the horizon.
	HPIPC float64
	// BEIPCs are the cumulative IPCs of each BE instance.
	BEIPCs []float64
	// HPAloneIPC and BEAloneIPCs are the same applications run alone on
	// the machine with the full LLC, for normalisation.
	HPAloneIPC  float64
	BEAloneIPCs []float64
	// FinalHPWays is the HP partition size at the end of the run (always
	// the full cache for UM).
	FinalHPWays int
	// ChaosStats counts the faults actually injected (zero without Chaos).
	ChaosStats ChaosStats
	// ToleratedFaults counts the Setup/Observe calls whose actuation was
	// rejected by an injected fault and retried on the next period.
	ToleratedFaults int
}

// HPNorm returns the HP's IPC normalised to its alone run.
func (r ScenarioResult) HPNorm() float64 {
	return metrics.NormIPC(r.HPIPC, r.HPAloneIPC)
}

// HPSlowdown returns the HP's co-location slowdown.
func (r ScenarioResult) HPSlowdown() float64 {
	return metrics.Slowdown(r.HPAloneIPC, r.HPIPC)
}

// BENorms returns each BE's IPC normalised to its alone run.
func (r ScenarioResult) BENorms() []float64 {
	out := make([]float64, len(r.BEIPCs))
	for i := range out {
		out[i] = metrics.NormIPC(r.BEIPCs[i], r.BEAloneIPCs[i])
	}
	return out
}

// EFU returns Eq. 1's effective utilisation for the run.
func (r ScenarioResult) EFU() float64 {
	norm := append([]float64{r.HPNorm()}, r.BENorms()...)
	return metrics.EFU(norm)
}

// SLOAchieved reports whether the HP met the given SLO fraction.
func (r ScenarioResult) SLOAchieved(slo float64) bool {
	return metrics.SLOAchieved(r.HPIPC, r.HPAloneIPC, slo)
}

// SUCI returns Eq. 4's combined index for the run.
func (r ScenarioResult) SUCI(slo, lambda float64) float64 {
	return metrics.SUCI(r.SLOAchieved(slo), r.EFU(), lambda)
}

// defaults fills unset fields.
func (s *Scenario) defaults() {
	if s.Machine.Cores == 0 {
		s.Machine = DefaultMachine()
	}
	if s.PeriodSec == 0 {
		s.PeriodSec = 1
	}
	if s.StepsPerPeriod == 0 {
		s.StepsPerPeriod = 4
	}
	if s.HorizonPeriods == 0 {
		s.HorizonPeriods = 120
	}
	if s.SLO == 0 {
		s.SLO = 0.9
	}
}

// Run executes the scenario under pol and returns the summary. Alone runs
// for normalisation are executed on the same machine.
func (s *Scenario) Run(pol Policy) (ScenarioResult, error) {
	s.defaults()
	if len(s.BEs) == 0 {
		return ScenarioResult{}, fmt.Errorf("dicer: scenario needs at least one BE")
	}
	if len(s.BEs)+1 > s.Machine.Cores {
		return ScenarioResult{}, fmt.Errorf("dicer: %d applications exceed %d cores",
			len(s.BEs)+1, s.Machine.Cores)
	}

	r, err := sim.New(s.Machine, 2)
	if err != nil {
		return ScenarioResult{}, err
	}
	if err := r.Attach(0, policy.HPClos, s.HP); err != nil {
		return ScenarioResult{}, err
	}
	for i, be := range s.BEs {
		if err := r.Attach(1+i, policy.BEClos, be); err != nil {
			return ScenarioResult{}, err
		}
	}
	var sys resctrl.System = resctrl.NewEmu(r, s.WithMBA)
	var csys *chaos.System
	if s.Chaos != nil && s.Chaos.Active() {
		if err := s.Chaos.Validate(); err != nil {
			return ScenarioResult{}, err
		}
		csys = chaos.New(sys, *s.Chaos, s.ChaosSeed)
		sys = csys
	}
	runPol := pol
	if s.CheckInvariants {
		runPol = invariant.Wrap(pol)
	}
	// tolerate absorbs injected actuation faults (the policy retries on
	// the next period, like a production controller would); invariant
	// violations and real errors stay fatal.
	tolerated := 0
	tolerate := func(err error) error {
		if err == nil {
			return nil
		}
		var ie *invariant.Error
		if errors.As(err, &ie) {
			return err
		}
		if csys != nil && errors.Is(err, chaos.ErrInjected) {
			tolerated++
			return nil
		}
		return err
	}

	// hpAlone is the HP's alone-run reference. When tracing it is
	// resolved up front so the header carries it (the diagnostic layer
	// derives per-period slowdown from it); otherwise it is computed
	// after the run as before. Either way the value is identical — the
	// alone run is an independent deterministic simulation.
	hpAlone := 0.0
	if s.Trace != nil {
		if hpAlone, err = s.aloneIPC(s.HP); err != nil {
			return ScenarioResult{}, err
		}
	}

	var rec *obs.Recorder
	if s.Trace != nil {
		rec = obs.NewRecorder(s.Trace)
		rec.AttachController(core.ControllerOf(runPol))
		rec.AttachChaos(csys)
		if err := rec.Start(s.traceHeader(pol, runPol, hpAlone)); err != nil {
			return ScenarioResult{}, err
		}
	}

	if err := tolerate(runPol.Setup(sys)); err != nil {
		return ScenarioResult{}, err
	}
	meter := resctrl.NewMeter(sys)
	dt := s.PeriodSec / float64(s.StepsPerPeriod)
	for period := 0; period < s.HorizonPeriods; period++ {
		for step := 0; step < s.StepsPerPeriod; step++ {
			r.Step(dt)
		}
		p := meter.Sample()
		if s.OnPeriod != nil {
			s.OnPeriod(period, p)
		}
		obsErr := runPol.Observe(sys, p)
		if rec != nil {
			rec.EndPeriod(period, p, sys, obsErr)
		}
		if err := tolerate(obsErr); err != nil {
			return ScenarioResult{}, err
		}
	}

	res := ScenarioResult{PolicyName: pol.Name()}
	res.HPIPC = r.Proc(0).IPC()
	for i := range s.BEs {
		res.BEIPCs = append(res.BEIPCs, r.Proc(1+i).IPC())
	}
	if csys != nil {
		// Land any delayed writes so the reported final partition is the
		// one the controller last asked for.
		csys.Drain()
		res.ChaosStats = csys.Stats()
		res.ToleratedFaults = tolerated
	}
	res.FinalHPWays = popCount(sys.CBM(policy.HPClos))

	if hpAlone != 0 {
		res.HPAloneIPC = hpAlone
	} else if res.HPAloneIPC, err = s.aloneIPC(s.HP); err != nil {
		return ScenarioResult{}, err
	}
	aloneCache := map[string]float64{}
	for _, be := range s.BEs {
		ipc, ok := aloneCache[be.Name]
		if !ok {
			if ipc, err = s.aloneIPC(be); err != nil {
				return ScenarioResult{}, err
			}
			aloneCache[be.Name] = ipc
		}
		res.BEAloneIPCs = append(res.BEAloneIPCs, ipc)
	}
	return res, nil
}

// traceHeader describes the run for trace sinks and the replay tool.
// pol is the user's policy (for the name), runPol the possibly
// guard-wrapped one actually driven (for the controller config).
// hpAlone is the HP's alone-run reference IPC (0 = unresolved).
func (s *Scenario) traceHeader(pol, runPol Policy, hpAlone float64) obs.Header {
	h := obs.Header{
		Schema:         obs.Schema,
		Policy:         pol.Name(),
		HP:             s.HP.Name,
		NumWays:        s.Machine.LLCWays,
		PeriodSec:      s.PeriodSec,
		HorizonPeriods: s.HorizonPeriods,
		SLO:            s.SLO,
		HPAloneIPC:     hpAlone,
		LinkGbps:       s.Machine.Link.CapacityGBps,
	}
	for _, be := range s.BEs {
		h.BEs = append(h.BEs, be.Name)
	}
	if s.Chaos != nil && s.Chaos.Active() {
		h.Chaos = s.Chaos.Name
		h.ChaosSeed = s.ChaosSeed
	}
	if ctl := core.ControllerOf(runPol); ctl != nil {
		cfg := ctl.Config()
		h.Controller = &cfg
	}
	return h
}

// aloneIPC runs prof alone on the machine with the full LLC.
func (s *Scenario) aloneIPC(prof Profile) (float64, error) {
	r, err := sim.New(s.Machine, 1)
	if err != nil {
		return 0, err
	}
	if err := r.Attach(0, 0, prof); err != nil {
		return 0, err
	}
	dt := s.PeriodSec / float64(s.StepsPerPeriod)
	for i := 0; i < s.HorizonPeriods*s.StepsPerPeriod; i++ {
		r.Step(dt)
	}
	return r.Proc(0).IPC(), nil
}

func popCount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// AloneIPC runs prof alone on machine m with the full LLC for the default
// horizon and returns its cumulative IPC — the normalisation reference the
// paper's metrics (and application-assisted controllers like
// ext.Heracles) need. Pass a zero Machine for the paper's platform.
func AloneIPC(m Machine, prof Profile) (float64, error) {
	sc := &Scenario{Machine: m, HP: prof}
	sc.defaults()
	return sc.aloneIPC(prof)
}
