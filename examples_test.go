package dicer_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesSmoke compiles and runs every program under examples/ with a
// short horizon, asserting each exits cleanly and prints something. This
// keeps the examples honest: an API change that breaks them fails the
// suite, not a user's first copy-paste.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke builds binaries; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	// Per-example short-horizon flags (every example accepts one).
	shortArgs := map[string][]string{
		"quickstart":    {"-periods", "20"},
		"consolidation": {"-periods", "20"},
		"phases":        {"-periods", "20"},
		"extensions":    {"-periods", "20"},
		"multihp":       {"-periods", "20"},
		"resctrlfs":     {"-seconds", "2"},
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		args, ok := shortArgs[name]
		if !ok {
			t.Errorf("examples/%s has no short-horizon flags registered in this test", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", append([]string{"run", "./" + filepath.Join("examples", name)}, args...)...)
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("examples/%s failed: %v\n%s", name, err, out)
			}
			if strings.TrimSpace(string(out)) == "" {
				t.Errorf("examples/%s produced no output", name)
			}
		})
		ran++
	}
	if ran == 0 {
		t.Fatal("no examples found")
	}
}
