// Package dicer is a reproduction of "DICER: Diligent Cache Partitioning
// for Efficient Workload Consolidation" (Nikas et al., ICPP 2019): a
// dynamic last-level-cache partitioning controller that co-locates one
// high-priority (HP) application with best-effort (BE) applications,
// protecting the HP's performance while handing every spare cache way to
// the BEs to maximise server utilisation.
//
// The package is a facade over the implementation packages:
//
//   - the DICER controller itself (Listings 1–3 of the paper), written
//     against a resctrl-style interface so it can drive real Intel RDT
//     hardware or the bundled simulator;
//   - a discrete-time multicore simulator (way-partitioned LLC, shared
//     memory link with saturation, phase-structured application models,
//     and a 59-entry SPEC/PARSEC-like workload catalog);
//   - the baseline policies (Unmanaged, Cache-Takeover, static
//     partitions), the paper's §6 extensions (MBA throttling, BE-count
//     management, overlapping partitions), and the metrics (EFU, SUCI,
//     SLO conformance);
//   - an experiment harness that regenerates every table and figure of
//     the paper's evaluation (see bench_test.go and cmd/dicer-bench).
//
// Quick start:
//
//	sc := dicer.NewScenario("omnetpp1", "gcc_base1", 9)
//	res, err := sc.Run(dicer.NewDICER())
//	fmt.Println(res.HPNorm(), res.EFU())
//
// See examples/ for runnable programs.
package dicer

import (
	"io"

	"dicer/internal/app"
	"dicer/internal/cache"
	"dicer/internal/chaos"
	"dicer/internal/cluster"
	"dicer/internal/core"
	"dicer/internal/diag"
	"dicer/internal/experiments"
	"dicer/internal/fleet"
	"dicer/internal/hypo"
	"dicer/internal/invariant"
	"dicer/internal/machine"
	"dicer/internal/membw"
	"dicer/internal/metrics"
	"dicer/internal/mrc"
	"dicer/internal/obs"
	"dicer/internal/policy"
	"dicer/internal/resctrl"
	"dicer/internal/sim"
)

// Aliases re-exporting the library's building blocks through the public
// package. External importers use these names; the internal packages stay
// private.
type (
	// Machine describes the simulated platform (Table 1 of the paper).
	Machine = machine.Machine
	// Link is the memory-link model with saturation behaviour.
	Link = membw.Link
	// Profile is a phase-structured application model.
	Profile = app.Profile
	// Phase is one execution phase of a Profile.
	Phase = app.Phase
	// Curve is an analytic miss-ratio curve over cache capacity.
	Curve = mrc.Curve
	// Component is one working set of a Curve's mixture.
	Component = mrc.Component
	// Policy is a co-location policy (UM, CT, Static, DICER, extensions).
	Policy = policy.Policy
	// System is the RDT/resctrl-style monitoring+allocation interface.
	System = resctrl.System
	// Period is one monitoring period's counter readings.
	Period = resctrl.Period
	// Controller is the DICER control state machine.
	Controller = core.Controller
	// ControllerConfig holds DICER's tunables (Table 1 defaults).
	ControllerConfig = core.Config
	// ControllerEvent is one traced controller decision.
	ControllerEvent = core.Event
	// Cache is the trace-driven way-partitioned LLC simulator.
	Cache = cache.Cache
	// CacheConfig is the LLC geometry for the trace-driven simulator.
	CacheConfig = cache.Config
	// Runner is the discrete-time co-location simulator.
	Runner = sim.Runner
	// Suite memoises experiment runs (figure drivers hang off it).
	Suite = experiments.Suite
	// ExperimentConfig configures the experiment harness. Its Workers
	// field bounds parallelism across every execution path the suite
	// owns — RunMany, the figure sweeps, FleetSuite, Soak, and hypothesis
	// replication — through one sharded executor; 0 means GOMAXPROCS.
	// Output is byte-identical for any Workers value: results land in
	// index-addressed slots, so ordering never depends on scheduling.
	ExperimentConfig = experiments.Config
	// Workload names one HP + n×BE multiprogrammed workload.
	Workload = experiments.Workload
	// Result is one co-located run's outcome.
	Result = experiments.Result
	// SLOMonitor tracks rolling per-period SLO conformance with an alarm.
	SLOMonitor = metrics.SLOMonitor
	// ChaosConfig is a deterministic fault schedule for the chaos layer
	// (counter dropout, frozen/jittered readings, rejected and delayed
	// schemata writes).
	ChaosConfig = chaos.Config
	// ChaosStats counts the faults a chaos system actually injected.
	ChaosStats = chaos.Stats
	// ChaosSystem wraps a System with seeded fault injection.
	ChaosSystem = chaos.System
	// InvariantError reports the controller safety properties a run broke.
	InvariantError = invariant.Error
	// InvariantChecker validates controller safety properties per period.
	InvariantChecker = invariant.Checker
	// InvariantGuard wraps a Policy with a per-period invariant check.
	InvariantGuard = invariant.Guard
	// SoakConfig drives the chaos soak matrix over a Suite.
	SoakConfig = experiments.SoakConfig
	// SoakResult aggregates one soak matrix.
	SoakResult = experiments.SoakResult
	// SoakRun is one (workload, schedule, seed) soak cell.
	SoakRun = experiments.SoakRun
	// TraceRecord is one monitoring period's structured audit entry:
	// counters read, saturation verdict, controller state and decisions,
	// masks installed, chaos faults active, guard interventions.
	TraceRecord = obs.Record
	// TraceHeader is a trace's first JSONL line: workload, machine and
	// controller configuration — everything replay needs.
	TraceHeader = obs.Header
	// TraceSink consumes one TraceRecord per monitoring period.
	TraceSink = obs.Sink
	// TraceRing is the fixed-capacity in-memory sink (the /trace buffer).
	TraceRing = obs.Ring
	// TraceJSONL is the JSON-Lines file sink (replayable audit trace).
	TraceJSONL = obs.JSONL
	// TraceMulti fans records out to several sinks.
	TraceMulti = obs.MultiSink
	// TraceReplayResult summarises a verified trace replay.
	TraceReplayResult = obs.ReplayResult
	// PromExporter aggregates trace records into Prometheus text metrics.
	PromExporter = metrics.Exporter
	// FleetConfig configures a multi-node consolidation cluster: node
	// count and policy, arrival generator, admission queue, placement
	// scheduler, node chaos.
	FleetConfig = fleet.Config
	// FleetCluster is N simulated DICER nodes behind admission control
	// and a placement scheduler; Step it once per monitoring period.
	FleetCluster = fleet.Cluster
	// FleetResult summarises one finished cluster run (fleet EFU, SLO
	// violation periods, reject rate, queue waits).
	FleetResult = fleet.Result
	// FleetArrivals seeds the open-loop best-effort job generator.
	FleetArrivals = fleet.ArrivalConfig
	// FleetScheduler places admitted BE jobs onto nodes.
	FleetScheduler = fleet.Scheduler
	// FleetNodeView is the per-node state a scheduler scores.
	FleetNodeView = fleet.NodeView
	// FleetHeartbeat is one node's per-period health record.
	FleetHeartbeat = fleet.Heartbeat
	// ClusterRecord is one cluster monitoring period: admission and
	// placement counters, chaos events, fleet EFU, sorted heartbeats.
	ClusterRecord = fleet.ClusterRecord
	// ClusterTraceHeader is a fleet trace's first JSONL line.
	ClusterTraceHeader = fleet.TraceHeader
	// FleetMigrationConfig parameterises the SLO-burn migration loop:
	// multi-window burn-rate alerts evicting BE jobs off burning nodes,
	// with cooldown and quarantine hysteresis.
	FleetMigrationConfig = fleet.MigrationConfig
	// FleetAutoscaleConfig parameterises the repartition-first
	// autoscaler: repack existing nodes before adding any, drain and
	// retire idle ones.
	FleetAutoscaleConfig = fleet.AutoscaleConfig
	// FleetEvent is one control-loop action recorded in a cluster
	// record (migration, repack, scale up/down).
	FleetEvent = fleet.FleetEvent
	// FleetExporter aggregates cluster records into Prometheus text.
	FleetExporter = metrics.FleetExporter
	// FleetForensicsConfig arms the fleet flight recorder: per-node
	// black-box rings sealed into incident bundles on SLO-burn, chaos,
	// or guard-veto triggers.
	FleetForensicsConfig = fleet.ForensicsConfig
	// FleetIncident is one sealed forensic bundle: manifest, the
	// triggering node's flight window, the control events in scope.
	FleetIncident = fleet.Incident
	// FleetIncidentManifest is a bundle's first JSONL line.
	FleetIncidentManifest = fleet.IncidentManifest
	// FleetFlightEntry is one node-period of black-box evidence.
	FleetFlightEntry = fleet.FlightEntry
	// DiagExplainReport is the causal explain engine's output: ranked
	// root-cause candidates for one incident.
	DiagExplainReport = diag.ExplainReport
	// DiagFinding is one ranked candidate root cause.
	DiagFinding = diag.Finding
	// NodeChaosSchedule is a deterministic node freeze/loss schedule.
	NodeChaosSchedule = chaos.NodeSchedule
	// DiagHistogram is a zero-alloc streaming percentile histogram.
	DiagHistogram = diag.Histogram
	// DiagAlerter evaluates multi-window SLO burn-rate rules.
	DiagAlerter = diag.Alerter
	// DiagAlertConfig parameterises the burn-rate alerter.
	DiagAlertConfig = diag.AlertConfig
	// DiagMonitor is the single-node live diagnostic pipeline (an
	// obs.Sink: slowdown/link histograms + burn-rate alerter).
	DiagMonitor = diag.Monitor
	// DiagFleetMonitor is the cluster diagnostic pipeline.
	DiagFleetMonitor = diag.FleetMonitor
	// DiagReport is one run's diagnostic digest (percentiles, burn-rate
	// timeline, decision causes, per-node outliers).
	DiagReport = diag.Report
	// DiagAnalyzeOptions tunes offline trace analysis.
	DiagAnalyzeOptions = diag.AnalyzeOptions
	// Hypothesis is a declared, falsifiable performance claim: named
	// configurations, a seed set, and directional minimum-effect
	// comparisons judged with paired Student-t confidence intervals.
	Hypothesis = hypo.Hypothesis
	// HypoComparison is one sub-claim of a hypothesis (metric, treatment
	// vs control or baseline, direction, minimum effect).
	HypoComparison = hypo.Comparison
	// HypoRunner executes hypotheses through an experiment Suite with
	// per-seed replication.
	HypoRunner = hypo.Runner
	// HypoResult is a fully executed and judged hypothesis; Markdown()
	// and JSON() render the FINDINGS report byte-deterministically.
	HypoResult = hypo.Result
	// HypoVerdict is one comparison's judged outcome (CI, effect size,
	// status, seed-widening trajectory).
	HypoVerdict = hypo.Verdict
	// MultiController is the multi-HP DICER controller: per-CLOS-group
	// DICER state machines over an LFOC-style clustering plan, under a
	// fixed CLOS budget (ROADMAP item 2).
	MultiController = core.MultiController
	// MultiControllerConfig holds the multi-HP controller's tunables:
	// the per-group DICER config plus the clustering policy knobs.
	MultiControllerConfig = core.MultiConfig
	// GroupControllerEvent is one traced per-group controller decision.
	GroupControllerEvent = core.GroupEvent
	// ClusterConfig bounds an LFOC-style clustering run.
	ClusterConfig = cluster.Config
	// ClusterSpec describes one HP application to the clustering policy.
	ClusterSpec = cluster.AppSpec
	// ClusterPlan is a complete grouping decision.
	ClusterPlan = cluster.Plan
	// TraceGroupRecord is one CLOS group's slice of a dicer-trace/v2
	// record.
	TraceGroupRecord = obs.GroupRecord
)

// Grouping policies for MultiScenario and MultiControllerConfig.
const (
	// GroupingClustered packs similar-sensitivity apps into shared CLOS
	// groups (LFOC-style; the default).
	GroupingClustered = core.GroupingClustered
	// GroupingPerApp gives every HP app its own CLOS (infeasible beyond
	// the budget; the baseline clustering is judged against).
	GroupingPerApp = core.GroupingPerApp
	// GroupingSpill is the naive fallback when apps outnumber CLOS ids:
	// per-app groups until the ids run out, overflow shares the last
	// group, ways dealt evenly.
	GroupingSpill = core.GroupingSpill
	// GroupingSingle stretches the legacy single-HP topology over all
	// apps: one shared HP group.
	GroupingSingle = core.GroupingSingle
)

// ErrChaosInjected marks errors caused by an injected fault; harnesses
// use errors.Is with it to tolerate chaos-induced actuation failures
// while keeping real errors fatal.
var ErrChaosInjected = chaos.ErrInjected

// AnalyzeTrace streams a recorded JSONL trace (single-node or fleet,
// schema-sniffed) through the live diagnostic pipeline offline and
// returns the run's report — byte-identical to what the live endpoints
// computed for the same records.
func AnalyzeTrace(r io.Reader, opts DiagAnalyzeOptions) (*DiagReport, error) {
	return diag.Analyze(r, opts)
}

// ReadIncident parses a forensic incident bundle written by the fleet
// flight recorder (dicer-incident/v1 JSONL).
func ReadIncident(r io.Reader) (*FleetIncident, error) { return fleet.ReadIncident(r) }

// ExplainIncident runs the causal explain engine over one sealed
// bundle: violation-onset detection and deterministically ranked
// root-cause candidates from the decision provenance in the window.
func ExplainIncident(inc *FleetIncident) *DiagExplainReport { return diag.ExplainIncident(inc) }

// NewDiagMonitor builds a live diagnostic monitor; wire it as a trace
// sink next to a PromExporter.
func NewDiagMonitor(cfg diag.MonitorConfig) *DiagMonitor { return diag.NewMonitor(cfg) }

// DefaultDiagAlertConfig returns the stock burn-rate rule (10% budget,
// 5-period fast window at 2x, 60-period slow window at 1x).
func DefaultDiagAlertConfig() DiagAlertConfig { return diag.DefaultAlertConfig() }

// DefaultMachine returns the paper's platform: 10 cores at 2.2 GHz, 25 MB
// 20-way LLC, 68.3 Gbps memory link.
func DefaultMachine() Machine { return machine.Default() }

// DefaultControllerConfig returns the paper's Table 1 DICER parameters:
// T = 1 s, 50 Gbps saturation threshold, 30 % phase threshold, a = 5 %.
func DefaultControllerConfig() ControllerConfig { return core.DefaultConfig() }

// NewDICER builds a DICER controller with the paper's configuration.
func NewDICER() *Controller { return core.MustNew(core.DefaultConfig()) }

// NewDICERWith builds a DICER controller with a custom configuration.
func NewDICERWith(cfg ControllerConfig) (*Controller, error) { return core.New(cfg) }

// NewMultiDICER builds a multi-HP DICER controller: one DICER state
// machine per CLOS group over a clustering plan for specs. MultiScenario
// wires one up end to end; use this directly to drive real hardware.
func NewMultiDICER(cfg MultiControllerConfig, specs []ClusterSpec) (*MultiController, error) {
	return core.NewMulti(cfg, specs)
}

// ClusterAssign computes the LFOC-style clustered plan: apps ordered by
// cache sensitivity, split at the largest sensitivity gaps while splits
// keep the predicted max penalty from growing, ways distributed by
// demand.
func ClusterAssign(cfg ClusterConfig, specs []ClusterSpec) (ClusterPlan, error) {
	return cluster.Assign(cfg, specs)
}

// RegisteredHypotheses returns the repo's standing performance claims as
// executable hypotheses (see cmd/dicer-hypo and DESIGN.md "Hypothesis
// harness").
func RegisteredHypotheses() []Hypothesis { return hypo.Registered() }

// NewHypoRunner wraps a Suite for hypothesis execution: every (config,
// seed) cell shares the suite's pooled runners and alone-run memo.
func NewHypoRunner(s *Suite) *HypoRunner { return hypo.NewRunner(s) }

// Unmanaged returns the UM baseline policy: no resource control at all.
func Unmanaged() Policy { return policy.Unmanaged{} }

// CacheTakeover returns the CT baseline policy: HP statically owns all but
// one LLC way.
func CacheTakeover() Policy { return policy.CacheTakeover{} }

// StaticPartition returns a fixed partition with hpWays exclusive ways for
// the HP.
func StaticPartition(hpWays int) Policy { return policy.Static{HPWays: hpWays} }

// Catalog returns the 59-application workload catalog (25 SPEC CPU 2006
// programs, 8 with multiple inputs, plus 9 PARSEC 3.0 programs).
func Catalog() []Profile { return app.Catalog() }

// AppByName looks up a catalog profile, e.g. "milc1" or "gcc_base3".
func AppByName(name string) (Profile, error) { return app.ByName(name) }

// AppNames returns all catalog profile names, sorted.
func AppNames() []string { return app.Names() }

// NewSuite builds an experiment suite for regenerating the paper's
// figures; use DefaultExperimentConfig for the paper's setup.
func NewSuite(cfg ExperimentConfig) (*Suite, error) { return experiments.NewSuite(cfg) }

// DefaultExperimentConfig returns the paper's evaluation configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// ChaosSchedules returns the canned fault schedules the soak harness runs
// (dropout, freeze, jitter, write-reject, delayed-actuation, storm).
func ChaosSchedules() []ChaosConfig { return chaos.Schedules() }

// ChaosScheduleByName looks up a canned fault schedule; "none" returns an
// inactive schedule.
func ChaosScheduleByName(name string) (ChaosConfig, error) { return chaos.ScheduleByName(name) }

// NewChaosSystem wraps sys in the deterministic fault-injection layer.
// The same wrapped system, schedule and seed replay bit-identically.
func NewChaosSystem(sys System, cfg ChaosConfig, seed int64) *ChaosSystem {
	return chaos.New(sys, cfg, seed)
}

// GuardPolicy wraps p in the runtime invariant guard: controller safety
// properties are machine-checked after every period and a violation
// surfaces as an *InvariantError from Observe.
func GuardPolicy(p Policy) *InvariantGuard { return invariant.Wrap(p) }

// NewSLOMonitor builds a rolling conformance monitor over the last n
// monitoring periods: feed it per-period HP IPC readings and it reports
// the fraction that met the SLO, alarming (with a full-window guard) when
// conformance drops below alarmBelow.
func NewSLOMonitor(ipcAlone, slo float64, n int, alarmBelow float64) *SLOMonitor {
	return metrics.NewSLOMonitor(ipcAlone, slo, n, alarmBelow)
}

// NewFleet builds a multi-node consolidation cluster. Step it once per
// monitoring period until Done, then Finish for the aggregate
// FleetResult. Identical configurations produce byte-identical cluster
// traces. See cmd/dicer-fleet for the CLI.
func NewFleet(cfg FleetConfig) (*FleetCluster, error) { return fleet.New(cfg) }

// Fleet control-loop event causes, as recorded in ClusterRecord.Events.
const (
	FleetCauseMigration = fleet.CauseMigration
	FleetCauseScaleUp   = fleet.CauseScaleUp
	FleetCauseScaleDown = fleet.CauseScaleDown
	FleetCauseRepack    = fleet.CauseRepack
)

// FleetSchedulerByName builds a placement scheduler: "random",
// "least-loaded", or "headroom" (predicted-pressure + bandwidth-headroom
// scoring that refuses knee-saturating placements). The seed only
// matters to "random".
func FleetSchedulerByName(name string, seed int64) (FleetScheduler, error) {
	return fleet.NewScheduler(name, seed)
}

// FleetSchedulerNames lists the built-in placement schedulers.
func FleetSchedulerNames() []string { return fleet.SchedulerNames() }

// ReadClusterTrace parses a JSONL cluster trace written by a fleet run.
func ReadClusterTrace(r io.Reader) (ClusterTraceHeader, []ClusterRecord, error) {
	return fleet.ReadClusterTrace(r)
}

// NodeChaosScheduleByName looks up a canned node fault schedule ("none",
// "node-freeze", "node-loss", "node-storm") sized for a cluster of the
// given node count and horizon.
func NodeChaosScheduleByName(name string, seed int64, nodes, horizon int) (NodeChaosSchedule, error) {
	return chaos.NodeScheduleByName(name, seed, nodes, horizon)
}

// NewFleetExporter builds the Prometheus-text aggregator for cluster
// records; dicer-fleet -serve exposes one at /metrics.
func NewFleetExporter() *FleetExporter { return metrics.NewFleetExporter() }

// NewTraceRing builds an in-memory trace sink holding the most recent
// capacity records; Emit never allocates, so it can stay attached for
// the lifetime of a deployment.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewTraceJSONL builds a trace sink writing JSON Lines (header first) to
// w. Call Flush after the run; records are buffered.
func NewTraceJSONL(w io.Writer) *TraceJSONL { return obs.NewJSONL(w) }

// ReadTrace parses a JSONL trace written by a TraceJSONL sink.
func ReadTrace(r io.Reader) (TraceHeader, []TraceRecord, error) { return obs.ReadTrace(r) }

// ReplayTrace re-drives a fresh DICER controller from a recorded trace
// and verifies decision-for-decision equivalence — every captured trace
// doubles as a regression test. See cmd/dicer-trace for the CLI.
func ReplayTrace(h TraceHeader, recs []TraceRecord) (TraceReplayResult, error) {
	return obs.Replay(h, recs)
}

// NewPromExporter builds a Prometheus-text-format metrics aggregator
// that doubles as a trace sink; dicer-sim -serve exposes one at
// /metrics.
func NewPromExporter() *PromExporter { return metrics.NewExporter() }

// EFU computes the paper's Eq. 1 effective utilisation from normalised
// IPCs (IPC / IPC_alone, one entry per co-located application).
func EFU(normIPCs []float64) float64 { return metrics.EFU(normIPCs) }

// SUCI computes the paper's Eq. 4 combined index from SLO conformance,
// effective utilisation, and the weighting exponent lambda.
func SUCI(sloAchieved bool, efu, lambda float64) float64 {
	return metrics.SUCI(sloAchieved, efu, lambda)
}
