package dicer

import (
	"fmt"
	"math/rand"
	"testing"

	"dicer/internal/app"
)

// Scenario-level (metamorphic) properties: transformations of a workload
// that must not change — or may only improve — what the controller and
// the metrics report. The trace ring doubles as the assertion surface:
// the HP-facing decision trajectory is exactly what a record carries.

// hpTrajectory runs sc under a fresh DICER controller with a trace ring
// attached and returns a fingerprint of everything HP-facing: per-period
// controller state, decisions, intended ways, and installed HP mask.
func hpTrajectory(t *testing.T, sc *Scenario) string {
	t.Helper()
	ring := NewTraceRing(sc.HorizonPeriods + 1)
	sc.Trace = ring
	res, err := sc.Run(NewDICER())
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "DICER" {
		t.Fatalf("unexpected policy %q", res.PolicyName)
	}
	var out []byte
	for _, r := range ring.Snapshot() {
		out = append(out, fmt.Sprintf("%d:%s:%v:%d:%x|",
			r.Period, r.State, r.Decisions, r.HPWays, r.HPMask)...)
	}
	return string(out)
}

// TestPropertyBEPermutationInvariance: the HP decision trajectory depends
// on the BE *class*, not on which core each BE instance landed on —
// permuting the BE list is invisible to the controller.
func TestPropertyBEPermutationInvariance(t *testing.T) {
	mixes := [][]string{
		{"gcc_base1", "gcc_base1", "lbm1", "lbm1", "mcf1"},
		{"gcc_base1", "omnetpp1", "lbm1", "gcc_base2", "milc1"},
	}
	for _, names := range mixes {
		build := func(order []string) *Scenario {
			sc := &Scenario{HP: app.MustByName("milc1"), HorizonPeriods: 40}
			for _, n := range order {
				sc.BEs = append(sc.BEs, app.MustByName(n))
			}
			return sc
		}
		base := hpTrajectory(t, build(names))
		if base == "" {
			t.Fatal("empty trajectory; fingerprint broken")
		}
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 3; trial++ {
			perm := append([]string(nil), names...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if got := hpTrajectory(t, build(perm)); got != base {
				t.Fatalf("BE order %v changed the HP decision trajectory vs %v", perm, names)
			}
		}
	}
}

// TestPropertyMoreCacheNeverHurtsUM: growing the LLC way by way (each
// way carrying the paper machine's way capacity) never lowers Unmanaged
// EFU — with no partitioning every application shares the whole cache,
// so more cache can only reduce misses. A small tolerance absorbs
// floating-point noise in the simulator's operating-point solve.
func TestPropertyMoreCacheNeverHurtsUM(t *testing.T) {
	const tol = 1e-6
	wayBytes := DefaultMachine().WayBytes()
	prev := -1.0
	for _, ways := range []int{10, 14, 18, 20, 24, 28} {
		m := DefaultMachine()
		m.LLCWays = ways
		m.LLCBytes = int(wayBytes) * ways
		sc := NewScenario("omnetpp1", "gcc_base1", 9)
		sc.Machine = m
		sc.HorizonPeriods = 40
		res, err := sc.Run(Unmanaged())
		if err != nil {
			t.Fatal(err)
		}
		efu := res.EFU()
		if efu <= 0 {
			t.Fatalf("%d ways: non-positive EFU %v", ways, efu)
		}
		if efu < prev-tol {
			t.Fatalf("EFU dropped when adding ways: %v @ previous size, %v @ %d ways", prev, efu, ways)
		}
		prev = efu
	}
}

// TestPropertyScenarioMatrixBounds: across a seeded matrix of workloads,
// every recorded period respects the controller's allocation bounds and
// the mask/intent consistency the invariant guard checks — asserted here
// from the *trace*, proving the records faithfully carry what the guard
// sees.
func TestPropertyScenarioMatrixBounds(t *testing.T) {
	names := AppNames()
	rng := rand.New(rand.NewSource(42))
	cfg := DefaultControllerConfig()
	for trial := 0; trial < 6; trial++ {
		hp := names[rng.Intn(len(names))]
		be := names[rng.Intn(len(names))]
		sc := NewScenario(hp, be, 1+rng.Intn(9))
		sc.HorizonPeriods = 30
		sc.CheckInvariants = true
		ring := NewTraceRing(64)
		sc.Trace = ring
		if _, err := sc.Run(NewDICER()); err != nil {
			t.Fatalf("%s + %s: %v", hp, be, err)
		}
		snap := ring.Snapshot()
		if len(snap) != 30 {
			t.Fatalf("%s + %s: %d records, want 30", hp, be, len(snap))
		}
		for _, r := range snap {
			if r.HPWays < cfg.MinHPWays || r.HPWays > 20-cfg.MinBEWays {
				t.Fatalf("%s + %s period %d: HP ways %d out of bounds", hp, be, r.Period, r.HPWays)
			}
			if r.HPMask&r.BEMask != 0 {
				t.Fatalf("%s + %s period %d: masks overlap: %#x & %#x", hp, be, r.Period, r.HPMask, r.BEMask)
			}
			if r.Guard != "" || r.Err != "" {
				t.Fatalf("%s + %s period %d: unexpected annotation %+v", hp, be, r.Period, r)
			}
		}
	}
}
