package dicer_test

import (
	"fmt"

	"dicer"
)

// ExampleScenario_AttachTimeline shows the documented timeline wiring:
// build a scenario, attach a Timeline, run, and inspect the per-period
// series. The simulator is deterministic, so the output is exact.
func ExampleScenario_AttachTimeline() {
	sc := dicer.NewScenario("omnetpp1", "gcc_base1", 9)
	sc.HorizonPeriods = 20

	tl := &dicer.Timeline{}
	sc.AttachTimeline(tl)
	if _, err := sc.Run(dicer.NewDICER()); err != nil {
		fmt.Println("run failed:", err)
		return
	}

	lo, hi := tl.MinMaxHPWays()
	fmt.Printf("periods recorded: %d\n", len(tl.Entries))
	fmt.Printf("HP ways ranged %d..%d\n", lo, hi)
	// Output:
	// periods recorded: 20
	// HP ways ranged 6..19
}
