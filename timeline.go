package dicer

import (
	"fmt"
	"io"
	"math/bits"

	"dicer/internal/policy"
)

// TimelineEntry is one monitoring period's view of a running scenario.
type TimelineEntry struct {
	Period    int
	HPIPC     float64
	BEMeanIPC float64
	HPWays    int
	BEWays    int
	HPBWGbps  float64
	TotalGbps float64
}

// Timeline records per-period scenario state for post-hoc analysis. Attach
// it to a Scenario before Run:
//
//	tl := &dicer.Timeline{}
//	sc.AttachTimeline(tl)
//
// (AttachTimeline installs an OnPeriod hook, so it replaces any hook set
// earlier.) For a structured, replayable audit trail — including the
// controller's decisions, not just the counters — use Scenario.Trace with
// a TraceRing or TraceJSONL sink instead; the timeline is the lightweight
// CSV-oriented view.
type Timeline struct {
	Entries []TimelineEntry
}

// AttachTimeline subscribes tl to the scenario's monitoring periods.
// It must be called before Run; it replaces any previous OnPeriod hook.
func (s *Scenario) AttachTimeline(tl *Timeline) {
	s.OnPeriod = func(period int, p Period) {
		e := TimelineEntry{
			Period:    period,
			HPIPC:     p.ClosMeanIPC(policy.HPClos),
			BEMeanIPC: p.ClosMeanIPC(policy.BEClos),
			HPBWGbps:  p.GroupBW(policy.HPClos),
			TotalGbps: p.TotalGbps,
		}
		for _, g := range p.Groups {
			switch g.Clos {
			case policy.HPClos:
				e.HPWays = bits.OnesCount64(g.CBM)
			case policy.BEClos:
				e.BEWays = bits.OnesCount64(g.CBM)
			}
		}
		tl.Entries = append(tl.Entries, e)
	}
}

// WriteCSV emits the timeline as CSV.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "period,hp_ipc,be_mean_ipc,hp_ways,be_ways,hp_bw_gbps,total_bw_gbps"); err != nil {
		return err
	}
	for _, e := range tl.Entries {
		if _, err := fmt.Fprintf(w, "%d,%.4f,%.4f,%d,%d,%.2f,%.2f\n",
			e.Period, e.HPIPC, e.BEMeanIPC, e.HPWays, e.BEWays, e.HPBWGbps, e.TotalGbps); err != nil {
			return err
		}
	}
	return nil
}

// HPWaysSeries returns the HP allocation over time, for quick plotting.
func (tl *Timeline) HPWaysSeries() []float64 {
	out := make([]float64, len(tl.Entries))
	for i, e := range tl.Entries {
		out[i] = float64(e.HPWays)
	}
	return out
}

// MinMaxHPWays returns the smallest and largest HP allocation seen.
func (tl *Timeline) MinMaxHPWays() (min, max int) {
	if len(tl.Entries) == 0 {
		return 0, 0
	}
	min, max = tl.Entries[0].HPWays, tl.Entries[0].HPWays
	for _, e := range tl.Entries {
		if e.HPWays < min {
			min = e.HPWays
		}
		if e.HPWays > max {
			max = e.HPWays
		}
	}
	return min, max
}
