package dicer

import (
	"errors"
	"testing"
)

func chaosScenario(t *testing.T) *Scenario {
	t.Helper()
	sc := NewScenario("omnetpp1", "gcc_base1", 9)
	sc.HorizonPeriods = 40
	return sc
}

func TestScenarioChaosFacade(t *testing.T) {
	if got := len(ChaosSchedules()); got < 5 {
		t.Fatalf("only %d canned schedules", got)
	}
	if _, err := ChaosScheduleByName("bogus"); err == nil {
		t.Fatal("expected error for unknown schedule")
	}
	cfg, err := ChaosScheduleByName("none")
	if err != nil || cfg.Active() {
		t.Fatalf("none schedule: %+v, %v", cfg, err)
	}
}

func TestScenarioUnderChaos(t *testing.T) {
	cfg, err := ChaosScheduleByName("storm")
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(t)
	sc.Chaos = &cfg
	sc.ChaosSeed = 7
	sc.CheckInvariants = true
	res, err := sc.Run(NewDICER())
	if err != nil {
		t.Fatal(err)
	}
	st := res.ChaosStats
	if st.Dropouts+st.FrozenReads+st.JitteredReads+st.WritesRejected+st.WritesDelayed == 0 {
		t.Fatalf("storm injected nothing: %v", st)
	}
	if res.HPIPC <= 0 || res.FinalHPWays <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}

	// Replay: same schedule + seed reproduces the run exactly.
	sc2 := chaosScenario(t)
	sc2.Chaos = &cfg
	sc2.ChaosSeed = 7
	sc2.CheckInvariants = true
	res2, err := sc2.Run(NewDICER())
	if err != nil {
		t.Fatal(err)
	}
	if res2.HPIPC != res.HPIPC || res2.ChaosStats != res.ChaosStats ||
		res2.ToleratedFaults != res.ToleratedFaults {
		t.Fatalf("chaos replay diverged:\n%+v\n%+v", res, res2)
	}
}

func TestScenarioChaosValidation(t *testing.T) {
	sc := chaosScenario(t)
	sc.Chaos = &ChaosConfig{DropoutProb: 2}
	if _, err := sc.Run(NewDICER()); err == nil {
		t.Fatal("invalid chaos config accepted")
	}
}

func TestScenarioGuardKeepsRealErrorsFatal(t *testing.T) {
	// Setup failures that are not injected faults must abort the run even
	// with chaos active and the guard on (only ErrChaosInjected is
	// tolerated).
	cfg, err := ChaosScheduleByName("jitter")
	if err != nil {
		t.Fatal(err)
	}
	sc := chaosScenario(t)
	sc.Chaos = &cfg
	sc.CheckInvariants = true
	if _, err := sc.Run(StaticPartition(0)); err == nil ||
		errors.Is(err, ErrChaosInjected) {
		t.Fatalf("zero-way static split not fatal: %v", err)
	}
}

func TestGuardPolicyFacade(t *testing.T) {
	g := GuardPolicy(NewDICER())
	if g.Name() != "DICER+guard" {
		t.Fatalf("name %q", g.Name())
	}
	sc := chaosScenario(t)
	res, err := sc.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "DICER+guard" {
		t.Fatalf("policy name %q", res.PolicyName)
	}
}
